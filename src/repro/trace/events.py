"""Branch trace events.

The unit of exchange between every trace producer (the SPEC-analog
workloads, the M88K-flavoured instruction-level simulator, and the
synthetic generators) and every consumer (the prediction engine, the
statistics collectors) is the :class:`BranchRecord`.

A record describes one *dynamic* branch: which static branch instruction
it came from (``pc``), what kind of branch it is (``branch_class``),
whether it was taken, where it went, how many dynamic instructions had
retired when it resolved (``instret`` — needed for the paper's
500 000-instruction context-switch model), and whether a trap was raised
at this point (the paper's other context-switch trigger).

Traces are stored column-wise in a :class:`Trace` for compactness and
fast iteration; :class:`TraceBuilder` is the append-only construction
interface used by all producers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple


class BranchClass(enum.IntEnum):
    """Dynamic branch classes distinguished by the paper's Figure 4."""

    CONDITIONAL = 0
    UNCONDITIONAL = 1
    CALL = 2
    RETURN = 3

    @property
    def short_name(self) -> str:
        return _SHORT_NAMES[self]


_SHORT_NAMES = {
    BranchClass.CONDITIONAL: "cond",
    BranchClass.UNCONDITIONAL: "uncond",
    BranchClass.CALL: "call",
    BranchClass.RETURN: "return",
}


@dataclass(frozen=True)
class BranchRecord:
    """One dynamic branch execution.

    Attributes:
        pc: address (or stable static site id) of the branch instruction.
        taken: the resolved direction. Unconditional branches, calls and
            returns are always taken.
        branch_class: conditional / unconditional / call / return.
        target: the resolved target address (0 when unknown/not modelled).
        instret: cumulative count of dynamic instructions retired up to
            and including this branch. Monotonically non-decreasing
            within a trace.
        trap: True when a trap (system call, fault) was raised at this
            point; the simulation engine treats traps as context-switch
            opportunities, as in the paper.
    """

    pc: int
    taken: bool
    branch_class: BranchClass = BranchClass.CONDITIONAL
    target: int = 0
    instret: int = 0
    trap: bool = False

    @property
    def is_conditional(self) -> bool:
        return self.branch_class is BranchClass.CONDITIONAL


@dataclass(frozen=True)
class TraceMeta:
    """Identifying metadata for a trace.

    Attributes:
        name: benchmark name, e.g. ``"eqntott"``.
        dataset: input dataset label, e.g. ``"int_pri_3.eqn"``.
        source: producer identifier (``"workload"``, ``"isa"``,
            ``"synthetic"``, ``"file"``).
        total_instructions: total dynamic instruction count of the run
            the trace was captured from (>= last record's ``instret``).
        extra: unknown metadata keys carried through by the text trace
            format, as a sorted tuple of ``(key, value)`` string pairs
            (a tuple keeps the dataclass hashable). The binary format
            does not serialize them.
    """

    name: str = "anonymous"
    dataset: str = ""
    source: str = "unknown"
    total_instructions: int = 0
    extra: Tuple[Tuple[str, str], ...] = ()


class Trace:
    """An immutable, column-wise store of branch records.

    Columns are plain Python lists of primitives: iterating tuples of
    primitives through ``zip`` is several times faster than iterating a
    list of objects, which matters because the prediction engine visits
    every record once per simulated predictor configuration.
    """

    __slots__ = ("meta", "_pc", "_taken", "_cls", "_target", "_instret", "_trap", "_arrays")

    def __init__(
        self,
        meta: TraceMeta,
        pc: Sequence[int],
        taken: Sequence[bool],
        cls: Sequence[int],
        target: Sequence[int],
        instret: Sequence[int],
        trap: Sequence[bool],
    ) -> None:
        lengths = {len(pc), len(taken), len(cls), len(target), len(instret), len(trap)}
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {sorted(lengths)}")
        self.meta = meta
        self._pc = list(pc)
        self._taken = list(taken)
        self._cls = list(cls)
        self._target = list(target)
        self._instret = list(instret)
        self._trap = list(trap)
        self._arrays: Optional["TraceArrays"] = None

    def __len__(self) -> int:
        return len(self._pc)

    def __iter__(self) -> Iterator[BranchRecord]:
        for pc, taken, cls, target, instret, trap in self.iter_tuples():
            yield BranchRecord(
                pc=pc,
                taken=taken,
                branch_class=BranchClass(cls),
                target=target,
                instret=instret,
                trap=trap,
            )

    def __getitem__(self, index: int) -> BranchRecord:
        return BranchRecord(
            pc=self._pc[index],
            taken=self._taken[index],
            branch_class=BranchClass(self._cls[index]),
            target=self._target[index],
            instret=self._instret[index],
            trap=self._trap[index],
        )

    def iter_tuples(self) -> Iterator[Tuple[int, bool, int, int, int, bool]]:
        """Yield ``(pc, taken, cls, target, instret, trap)`` tuples.

        This is the hot path used by the simulation engine.
        """
        return zip(self._pc, self._taken, self._cls, self._target, self._instret, self._trap)

    @property
    def columns(self) -> Tuple[List[int], List[bool], List[int], List[int], List[int], List[bool]]:
        """The raw columns (pc, taken, cls, target, instret, trap)."""
        return (self._pc, self._taken, self._cls, self._target, self._instret, self._trap)

    def as_arrays(self) -> "TraceArrays":
        """Columnar NumPy view of the trace, built once and cached.

        The vectorized simulation backend (:mod:`repro.sim.kernels`)
        consumes traces through this API; the list->array conversion of
        a million-record trace costs ~100 ms, so the result is cached
        on the trace and shared by every simulation of it. The returned
        arrays are read-only.

        Raises:
            RuntimeError: when NumPy is not installed (the interpreted
                engine never needs it).
        """
        if self._arrays is None:
            self._arrays = TraceArrays(self)
        return self._arrays

    # ------------------------------------------------------------------
    # TraceSource protocol (see repro.trace.stream)
    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        """Record count (``TraceSource`` protocol; always known here)."""
        return len(self._pc)

    def iter_blocks(self, block_size: Optional[int] = None) -> Iterator["TraceBlock"]:
        """Yield the trace as :class:`TraceBlock` windows.

        ``block_size=None`` yields the whole trace as a single block
        (sharing the already-cached arrays, so the vectorized engine
        pays no conversion twice). An empty trace yields no blocks.
        This makes an in-memory :class:`Trace` a valid
        :class:`repro.trace.stream.TraceSource`.
        """
        n = len(self._pc)
        if block_size is not None and block_size < 1:
            raise ValueError("block_size must be >= 1")
        if n == 0:
            return
        if block_size is None or block_size >= n:
            block = TraceBlock(
                self.meta, 0,
                self._pc, self._taken, self._cls,
                self._target, self._instret, self._trap,
            )
            if self._arrays is not None:
                block._arrays = self._arrays
            yield block
            return
        for start in range(0, n, block_size):
            stop = min(start + block_size, n)
            yield TraceBlock(
                self.meta, start,
                self._pc[start:stop], self._taken[start:stop],
                self._cls[start:stop], self._target[start:stop],
                self._instret[start:stop], self._trap[start:stop],
            )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def conditional_only(self) -> "Trace":
        """A new trace containing only conditional-branch records."""
        keep = [i for i, c in enumerate(self._cls) if c == BranchClass.CONDITIONAL]
        return self.select(keep)

    def select(self, indices: Sequence[int]) -> "Trace":
        """A new trace containing only the records at ``indices``."""
        return Trace(
            meta=self.meta,
            pc=[self._pc[i] for i in indices],
            taken=[self._taken[i] for i in indices],
            cls=[self._cls[i] for i in indices],
            target=[self._target[i] for i in indices],
            instret=[self._instret[i] for i in indices],
            trap=[self._trap[i] for i in indices],
        )

    def head(self, n: int) -> "Trace":
        """A new trace containing the first ``n`` records."""
        return Trace(
            meta=self.meta,
            pc=self._pc[:n],
            taken=self._taken[:n],
            cls=self._cls[:n],
            target=self._target[:n],
            instret=self._instret[:n],
            trap=self._trap[:n],
        )

    def static_branch_sites(self) -> List[int]:
        """Sorted distinct PCs of *conditional* branches in the trace."""
        sites = {pc for pc, c in zip(self._pc, self._cls) if c == BranchClass.CONDITIONAL}
        return sorted(sites)

    def num_conditional(self) -> int:
        return sum(1 for c in self._cls if c == BranchClass.CONDITIONAL)

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.meta.name!r}, dataset={self.meta.dataset!r}, "
            f"records={len(self)}, conditional={self.num_conditional()})"
        )


class TraceArrays:
    """Read-only columnar NumPy export of a :class:`Trace`.

    One array per trace column, plus the derived products every
    vectorized consumer needs: the conditional-record mask and (lazily)
    the dense site-id relabelling of conditional PCs. Construction is
    the only expensive step, which is why :meth:`Trace.as_arrays`
    caches the instance on the trace. :meth:`from_columns` builds the
    same structure straight from raw columns (lists or ndarrays), which
    is how streamed trace blocks avoid materializing a :class:`Trace`.
    """

    __slots__ = ("pc", "taken", "cls", "target", "instret", "trap",
                 "cond_mask", "_sites", "_site_ids")

    def __init__(self, trace: Optional[Trace] = None, *, columns=None) -> None:
        try:
            import numpy as np
        except ImportError as exc:  # pragma: no cover - numpy is a soft dep
            raise RuntimeError(
                "Trace.as_arrays() requires NumPy; the interpreted "
                "simulation backend does not"
            ) from exc
        if (trace is None) == (columns is None):
            raise ValueError("pass exactly one of a Trace or a columns tuple")
        if trace is not None:
            columns = trace.columns
        pc, taken, cls, target, instret, trap = columns
        self.pc = np.asarray(pc, dtype=np.int64)
        self.taken = np.asarray(taken, dtype=np.bool_)
        self.cls = np.asarray(cls, dtype=np.uint8)
        self.target = np.asarray(target, dtype=np.int64)
        self.instret = np.asarray(instret, dtype=np.int64)
        self.trap = np.asarray(trap, dtype=np.bool_)
        self.cond_mask = self.cls == int(BranchClass.CONDITIONAL)
        for name in ("pc", "taken", "cls", "target", "instret", "trap", "cond_mask"):
            getattr(self, name).flags.writeable = False
        self._sites = None
        self._site_ids = None

    @classmethod
    def from_columns(cls, pc, taken, branch_cls, target, instret, trap) -> "TraceArrays":
        """Build directly from raw columns (lists or NumPy arrays).

        Arrays already carrying the canonical dtypes are adopted
        without copying and frozen in place.
        """
        return cls(columns=(pc, taken, branch_cls, target, instret, trap))

    def __len__(self) -> int:
        return int(self.pc.shape[0])

    def conditional_site_ids(self):
        """``(sites, ids)``: sorted distinct conditional PCs and, for
        every conditional record in trace order, the index of its PC in
        ``sites``. Computed once and cached."""
        if self._sites is None:
            import numpy as np
            sites, ids = np.unique(self.pc[self.cond_mask], return_inverse=True)
            sites.flags.writeable = False
            ids = ids.astype(np.int64, copy=False)
            ids.flags.writeable = False
            self._sites, self._site_ids = sites, ids
        return self._sites, self._site_ids


class TraceBlock:
    """A bounded, immutable window of consecutive trace records.

    Blocks are the unit of exchange of the streaming trace layer
    (:mod:`repro.trace.stream`): every :class:`TraceSource` yields its
    records as a sequence of blocks whose memory footprint is bounded
    by the block size, never by the trace length. A block carries the
    owning trace's :class:`TraceMeta`, the absolute index of its first
    record (``start``), and the six record columns — either plain
    Python lists (interpreted engine) or NumPy arrays (streamed
    containers and synthetic array generators); both kinds serve both
    consumers.
    """

    __slots__ = ("meta", "start", "_columns", "_arrays")

    def __init__(self, meta: TraceMeta, start: int, pc, taken, cls, target, instret, trap) -> None:
        self.meta = meta
        self.start = int(start)
        self._columns = (pc, taken, cls, target, instret, trap)
        self._arrays: Optional[TraceArrays] = None

    def __len__(self) -> int:
        return len(self._columns[0])

    @property
    def columns(self):
        """The raw columns ``(pc, taken, cls, target, instret, trap)``."""
        return self._columns

    def iter_tuples(self) -> Iterator[Tuple[int, bool, int, int, int, bool]]:
        """Yield ``(pc, taken, cls, target, instret, trap)`` tuples.

        NumPy columns are converted to Python scalars once per block
        (``tolist``), so the interpreted engine iterates native tuples
        exactly as it does over an in-memory :class:`Trace`.
        """
        cols = [c.tolist() if hasattr(c, "tolist") else c for c in self._columns]
        return zip(*cols)

    def as_arrays(self) -> TraceArrays:
        """Columnar NumPy view of the block, built once and cached."""
        if self._arrays is None:
            self._arrays = TraceArrays.from_columns(*self._columns)
        return self._arrays

    def to_trace(self) -> Trace:
        """Materialize the block as a standalone :class:`Trace`."""
        cols = [c.tolist() if hasattr(c, "tolist") else c for c in self._columns]
        return Trace(self.meta, *cols)

    def __repr__(self) -> str:
        return f"TraceBlock(start={self.start}, records={len(self)})"


class TraceBuilder:
    """Append-only builder used by all trace producers.

    Producers call :meth:`branch` (or the convenience wrappers) for every
    dynamic branch and :meth:`instructions` to account for non-branch
    instructions executed between branches; ``instret`` values are
    derived automatically.
    """

    def __init__(self, name: str = "anonymous", dataset: str = "", source: str = "unknown") -> None:
        self._name = name
        self._dataset = dataset
        self._source = source
        self._instret = 0
        self._pending_trap = False
        self._pc: List[int] = []
        self._taken: List[bool] = []
        self._cls: List[int] = []
        self._target: List[int] = []
        self._instret_col: List[int] = []
        self._trap: List[bool] = []

    def __len__(self) -> int:
        return len(self._pc)

    @property
    def instret(self) -> int:
        """Dynamic instructions retired so far."""
        return self._instret

    def instructions(self, count: int) -> None:
        """Account for ``count`` non-branch instructions retiring."""
        if count < 0:
            raise ValueError("instruction count must be non-negative")
        self._instret += count

    def trap(self) -> None:
        """Record that a trap occurs before the next branch record."""
        self._pending_trap = True
        self._instret += 1

    def branch(
        self,
        pc: int,
        taken: bool,
        branch_class: BranchClass = BranchClass.CONDITIONAL,
        target: int = 0,
        work: int = 0,
    ) -> bool:
        """Record a dynamic branch.

        Args:
            pc: static site id / address.
            taken: resolved direction.
            branch_class: branch class; non-conditional classes force
                ``taken=True``.
            target: resolved target (optional).
            work: non-branch instructions retired immediately before
                this branch (convenience for producers that account for
                work per-branch rather than via :meth:`instructions`).

        Returns:
            ``taken`` unchanged, so instrumented code can write
            ``if probe.branch(pc, x < y):`` and keep its own semantics.
        """
        if branch_class is not BranchClass.CONDITIONAL:
            taken = True
        self._instret += work + 1
        self._pc.append(pc)
        self._taken.append(bool(taken))
        self._cls.append(int(branch_class))
        self._target.append(target)
        self._instret_col.append(self._instret)
        self._trap.append(self._pending_trap)
        self._pending_trap = False
        return taken

    def conditional(self, pc: int, taken: bool, work: int = 0) -> bool:
        return self.branch(pc, taken, BranchClass.CONDITIONAL, work=work)

    def unconditional(self, pc: int, target: int = 0, work: int = 0) -> None:
        self.branch(pc, True, BranchClass.UNCONDITIONAL, target=target, work=work)

    def call(self, pc: int, target: int = 0, work: int = 0) -> None:
        self.branch(pc, True, BranchClass.CALL, target=target, work=work)

    def ret(self, pc: int, target: int = 0, work: int = 0) -> None:
        self.branch(pc, True, BranchClass.RETURN, target=target, work=work)

    def build(self, total_instructions: Optional[int] = None) -> Trace:
        """Freeze the builder into an immutable :class:`Trace`."""
        meta = TraceMeta(
            name=self._name,
            dataset=self._dataset,
            source=self._source,
            total_instructions=self._instret if total_instructions is None else total_instructions,
        )
        return Trace(
            meta=meta,
            pc=self._pc,
            taken=self._taken,
            cls=self._cls,
            target=self._target,
            instret=self._instret_col,
            trap=self._trap,
        )
