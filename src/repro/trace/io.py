"""Trace serialization.

Two interchangeable formats:

* **Text** (``.btr``) — one record per line, human-greppable, used in
  examples and documentation. Unknown ``# key=value`` metadata lines
  round-trip through :attr:`TraceMeta.extra` instead of being dropped.
* **Binary** (``.btb``) — packed little-endian records with a small
  header, roughly 26 bytes/record, used by the trace cache. Reading
  and writing use a NumPy structured-dtype fast path when NumPy is
  available and fall back to ``struct`` otherwise.

Both formats round-trip exactly (checked by property-based tests).
Field values that cannot be represented by the binary format (e.g. a
``pc`` outside the signed 64-bit range) raise :class:`TraceFormatError`
*before* any bytes are written, and :func:`save_trace` writes through a
temporary file, so a failed save never leaves a truncated trace file
on disk.
"""

from __future__ import annotations

import io
import os
import struct
import warnings
from pathlib import Path
from typing import BinaryIO, Iterable, List, Optional, TextIO, Union

from .events import BranchClass, BranchRecord, Trace, TraceMeta

try:  # NumPy accelerates binary (de)serialization but is optional here.
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

_MAGIC = b"BTRC"
_VERSION = 1
_HEADER = struct.Struct("<4sHHQ")  # magic, version, reserved, record count
_RECORD = struct.Struct("<qBBqq")  # pc, flags, cls, target, instret
_FLAG_TAKEN = 0x01
_FLAG_TRAP = 0x02

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: Text-format metadata keys with first-class TraceMeta fields.
_KNOWN_META_KEYS = ("name", "dataset", "source", "total_instructions")

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or unrepresentable."""


class TraceFormatWarning(UserWarning):
    """Emitted for recoverable trace-format problems (missing metadata)."""


# ----------------------------------------------------------------------
# Text format
# ----------------------------------------------------------------------

def write_text(trace: Trace, stream: TextIO) -> None:
    """Write ``trace`` to ``stream`` in the text format.

    Layout: a ``#``-prefixed metadata header, then one record per line:
    ``pc taken cls target instret trap``. Unknown metadata keys carried
    in :attr:`TraceMeta.extra` are re-emitted after the known ones.
    """
    meta = trace.meta
    stream.write(f"# name={meta.name}\n")
    stream.write(f"# dataset={meta.dataset}\n")
    stream.write(f"# source={meta.source}\n")
    stream.write(f"# total_instructions={meta.total_instructions}\n")
    stream.write(f"# records={len(trace)}\n")
    for key, value in meta.extra:
        stream.write(f"# {key}={value}\n")
    for pc, taken, cls, target, instret, trap in trace.iter_tuples():
        stream.write(
            f"{pc} {int(taken)} {BranchClass(cls).short_name} {target} {instret} {int(trap)}\n"
        )


def read_text(stream: TextIO, missing_meta: str = "warn") -> Trace:
    """Read a trace written by :func:`write_text`.

    Args:
        stream: the text stream to parse.
        missing_meta: what to do when the header lacks a
            ``total_instructions`` line — ``"warn"`` (default) emits a
            :class:`TraceFormatWarning` and falls back to the last
            record's ``instret``, ``"error"`` raises
            :class:`TraceFormatError`, ``"ignore"`` silently applies
            the same fallback. A missing count used to default to 0,
            which silently disabled the periodic context-switch model
            and produced misleading ledger run ids downstream.

    Unknown ``# key=value`` lines are preserved in
    :attr:`TraceMeta.extra` (sorted by key) instead of being dropped.
    """
    if missing_meta not in ("warn", "error", "ignore"):
        raise ValueError(f"missing_meta must be 'warn', 'error' or 'ignore', got {missing_meta!r}")
    meta_fields = {"name": "anonymous", "dataset": "", "source": "file"}
    seen_keys = set()
    extra_fields = {}
    declared_records: Optional[int] = None
    short_to_cls = {c.short_name: c for c in BranchClass}
    pc, taken, cls, target, instret, trap = [], [], [], [], [], []
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if "=" in body:
                key, _, value = body.partition("=")
                key = key.strip()
                value = value.strip()
                seen_keys.add(key)
                if key in _KNOWN_META_KEYS:
                    meta_fields[key] = value
                elif key == "records":
                    try:
                        declared_records = int(value)
                    except ValueError as exc:
                        raise TraceFormatError(f"line {lineno}: bad records count {value!r}") from exc
                else:
                    extra_fields[key] = value
            continue
        parts = line.split()
        if len(parts) != 6:
            raise TraceFormatError(f"line {lineno}: expected 6 fields, got {len(parts)}")
        try:
            pc.append(int(parts[0]))
            taken.append(bool(int(parts[1])))
            cls.append(int(short_to_cls[parts[2]]))
            target.append(int(parts[3]))
            instret.append(int(parts[4]))
            trap.append(bool(int(parts[5])))
        except (ValueError, KeyError) as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
    if declared_records is not None and declared_records != len(pc):
        raise TraceFormatError(
            f"header declares {declared_records} records but the stream holds {len(pc)}"
        )
    if "total_instructions" in seen_keys:
        try:
            total_instructions = int(meta_fields["total_instructions"])
        except ValueError as exc:
            raise TraceFormatError(f"bad total_instructions {meta_fields['total_instructions']!r}") from exc
    else:
        if missing_meta == "error":
            raise TraceFormatError(
                "metadata lacks total_instructions; the context-switch model "
                "needs the true dynamic instruction count"
            )
        total_instructions = instret[-1] if instret else 0
        if missing_meta == "warn":
            warnings.warn(
                "trace metadata lacks total_instructions; falling back to the "
                f"last record's instret ({total_instructions}) — re-save the "
                "trace to silence this",
                TraceFormatWarning,
                stacklevel=2,
            )
    meta = TraceMeta(
        name=meta_fields["name"],
        dataset=meta_fields["dataset"],
        source=meta_fields["source"],
        total_instructions=total_instructions,
        extra=tuple(sorted(extra_fields.items())),
    )
    return Trace(meta, pc, taken, cls, target, instret, trap)


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------

def _record_dtype():
    """The NumPy structured dtype matching ``_RECORD`` byte-for-byte."""
    return _np.dtype([
        ("pc", "<i8"), ("flags", "u1"), ("cls", "u1"),
        ("target", "<i8"), ("instret", "<i8"),
    ])


def _check_range(name: str, values: Iterable[int], lo: int, hi: int) -> None:
    for index, value in enumerate(values):
        if not (lo <= value <= hi):
            raise TraceFormatError(
                f"record {index}: {name}={value} does not fit the binary "
                f"trace format (allowed range [{lo}, {hi}])"
            )


def _validate_columns(trace: Trace) -> None:
    """Validate every column fits the packed record, with indices."""
    pc, _taken, cls, target, instret, _trap = trace.columns
    _check_range("pc", pc, _INT64_MIN, _INT64_MAX)
    _check_range("cls", cls, 0, 255)
    _check_range("target", target, _INT64_MIN, _INT64_MAX)
    _check_range("instret", instret, _INT64_MIN, _INT64_MAX)


def _records_payload(trace: Trace) -> bytes:
    """Serialize all records to bytes, validating ranges up front.

    Nothing is written to any stream before this returns, so a
    validation failure can never truncate an output file mid-record.
    """
    pc, taken, cls, target, instret, trap = trace.columns
    if _np is not None:
        records = _np.empty(len(trace), dtype=_record_dtype())
        try:
            records["pc"] = _np.asarray(pc, dtype=_np.int64)
            records["cls"] = _np.asarray(cls, dtype=_np.uint8)
            records["target"] = _np.asarray(target, dtype=_np.int64)
            records["instret"] = _np.asarray(instret, dtype=_np.int64)
        except OverflowError:
            _validate_columns(trace)  # locate + report the offender
            raise TraceFormatError("trace column out of range")  # pragma: no cover
        flags = _np.asarray(taken, dtype=_np.uint8) * _FLAG_TAKEN
        flags |= _np.asarray(trap, dtype=_np.uint8) * _FLAG_TRAP
        records["flags"] = flags
        return records.tobytes()
    _validate_columns(trace)
    pack = _RECORD.pack
    chunks: List[bytes] = []
    for r_pc, r_taken, r_cls, r_target, r_instret, r_trap in trace.iter_tuples():
        r_flags = (_FLAG_TAKEN if r_taken else 0) | (_FLAG_TRAP if r_trap else 0)
        chunks.append(pack(r_pc, r_flags, r_cls, r_target, r_instret))
    return b"".join(chunks)


def write_binary(trace: Trace, stream: BinaryIO) -> None:
    """Write ``trace`` to ``stream`` in the packed binary format.

    Field ranges are validated and the full record payload built
    *before* the header is written: an unrepresentable value raises
    :class:`TraceFormatError` (not a bare ``struct.error``) and leaves
    the stream untouched. ``TraceMeta.extra`` keys are a text-format
    feature and are not serialized here.
    """
    meta = trace.meta
    if not (_INT64_MIN <= meta.total_instructions <= _INT64_MAX):
        raise TraceFormatError(
            f"total_instructions={meta.total_instructions} does not fit the "
            f"binary trace format (allowed range [{_INT64_MIN}, {_INT64_MAX}])"
        )
    payload = _records_payload(trace)
    stream.write(_HEADER.pack(_MAGIC, _VERSION, 0, len(trace)))
    _write_string(stream, meta.name)
    _write_string(stream, meta.dataset)
    _write_string(stream, meta.source)
    stream.write(struct.pack("<q", meta.total_instructions))
    stream.write(payload)


def read_binary(stream: BinaryIO) -> Trace:
    """Read a trace written by :func:`write_binary`."""
    header = stream.read(_HEADER.size)
    if len(header) != _HEADER.size:
        raise TraceFormatError("truncated header")
    magic, version, _, count = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}")
    if version != _VERSION:
        raise TraceFormatError(f"unsupported version {version}")
    name = _read_string(stream)
    dataset = _read_string(stream)
    source = _read_string(stream)
    (total_instructions,) = struct.unpack("<q", _read_exact(stream, 8))
    meta = TraceMeta(name, dataset, source, total_instructions)
    size = _RECORD.size
    payload = _read_exact(stream, size * count)
    if _np is not None:
        records = _np.frombuffer(payload, dtype=_record_dtype())
        flags = records["flags"]
        return Trace(
            meta,
            records["pc"].tolist(),
            ((flags & _FLAG_TAKEN) != 0).tolist(),
            records["cls"].tolist(),
            records["target"].tolist(),
            records["instret"].tolist(),
            ((flags & _FLAG_TRAP) != 0).tolist(),
        )
    pc, taken, cls, target, instret, trap = [], [], [], [], [], []
    unpack = _RECORD.unpack
    for offset in range(0, size * count, size):
        r_pc, flags, r_cls, r_target, r_instret = unpack(payload[offset : offset + size])
        pc.append(r_pc)
        taken.append(bool(flags & _FLAG_TAKEN))
        cls.append(r_cls)
        target.append(r_target)
        instret.append(r_instret)
        trap.append(bool(flags & _FLAG_TRAP))
    return Trace(meta, pc, taken, cls, target, instret, trap)


def _write_string(stream: BinaryIO, value: str) -> None:
    data = value.encode("utf-8")
    stream.write(struct.pack("<I", len(data)))
    stream.write(data)


def _read_string(stream: BinaryIO) -> str:
    (length,) = struct.unpack("<I", _read_exact(stream, 4))
    return _read_exact(stream, length).decode("utf-8")


def _read_exact(stream: BinaryIO, size: int) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise TraceFormatError(f"truncated stream: wanted {size} bytes, got {len(data)}")
    return data


# ----------------------------------------------------------------------
# File-level helpers
# ----------------------------------------------------------------------

def _tmp_sibling(path: Path) -> Path:
    """A collision-free temporary sibling for atomic replacement.

    The pid + object-id suffix keeps concurrent writers of the *same*
    destination (parallel sweeps sharing a trace cache directory) from
    clobbering each other's in-flight temp file — with a fixed ``.tmp``
    name, one process's ``os.replace`` could publish another's
    half-written bytes.
    """
    return path.with_name(f"{path.name}.tmp-{os.getpid()}-{id(path):x}")


def save_trace(trace: Trace, path: PathLike) -> None:
    """Save ``trace`` to ``path``; format chosen by suffix.

    ``.btr`` selects the text format, ``.btrs`` the streamed container
    (written via :func:`repro.trace.stream.save_source`), anything else
    the binary format. The data is written to a uniquely-named temporary
    sibling file and atomically renamed into place, so a failed save
    (validation error, full disk, interrupt) never leaves a partial
    trace file at ``path``, and concurrent savers never observe each
    other's partial writes.
    """
    path = Path(path)
    if path.suffix == ".btrs":
        # Deferred import: stream builds on this module.
        from .stream import save_source

        save_source(trace, path)
        return
    tmp = _tmp_sibling(path)
    try:
        # fsync before the rename: os.replace alone orders the *name*,
        # not the bytes — after a crash the rename can survive while the
        # data does not, publishing a truncated trace (found by
        # res/replace-without-fsync).
        if path.suffix == ".btr":
            with tmp.open("w") as stream:
                write_text(trace, stream)
                stream.flush()
                os.fsync(stream.fileno())
        else:
            with tmp.open("wb") as stream:
                write_binary(trace, stream)
                stream.flush()
                os.fsync(stream.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def _sniff_magic(path: Path) -> bytes:
    try:
        with path.open("rb") as stream:
            return stream.read(4)
    except OSError:
        return b""


def load_trace(path: PathLike, missing_meta: str = "warn") -> Trace:
    """Load a trace saved by :func:`save_trace`, fully materialized.

    ``missing_meta`` is forwarded to :func:`read_text` for text traces;
    the binary headers always carry ``total_instructions``. A streamed
    ``.btrs`` container (recognised by suffix or by its ``BTRS`` magic
    regardless of suffix) is materialized into memory — use
    :func:`repro.trace.stream.open_stream` (or
    :func:`~repro.trace.stream.open_trace_source`) to consume it in
    bounded memory instead.
    """
    path = Path(path)
    if path.suffix == ".btr":
        with path.open() as stream:
            return read_text(stream, missing_meta=missing_meta)
    if path.suffix == ".btrs" or _sniff_magic(path) == b"BTRS":
        from .stream import open_stream

        with open_stream(path) as streamed:
            return streamed.materialize()
    with path.open("rb") as stream:
        return read_binary(stream)


def trace_from_records(records: Iterable[BranchRecord], name: str = "anonymous", dataset: str = "", source: str = "records") -> Trace:
    """Build a trace from an iterable of :class:`BranchRecord`.

    ``instret`` values in the records are preserved verbatim.
    """
    pc, taken, cls, target, instret, trap = [], [], [], [], [], []
    for record in records:
        pc.append(record.pc)
        taken.append(record.taken)
        cls.append(int(record.branch_class))
        target.append(record.target)
        instret.append(record.instret)
        trap.append(record.trap)
    total = instret[-1] if instret else 0
    meta = TraceMeta(name=name, dataset=dataset, source=source, total_instructions=total)
    return Trace(meta, pc, taken, cls, target, instret, trap)


def dumps(trace: Trace) -> bytes:
    """Serialize ``trace`` to bytes (binary format)."""
    buffer = io.BytesIO()
    write_binary(trace, buffer)
    return buffer.getvalue()


def loads(data: bytes) -> Trace:
    """Deserialize a trace from bytes produced by :func:`dumps`."""
    return read_binary(io.BytesIO(data))
