"""Trace serialization.

Two interchangeable formats:

* **Text** (``.btr``) — one record per line, human-greppable, used in
  examples and documentation.
* **Binary** (``.btb``) — packed little-endian records with a small
  header, roughly 18 bytes/record, used by the trace cache.

Both formats round-trip exactly (checked by property-based tests).
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, TextIO, Union

from .events import BranchClass, BranchRecord, Trace, TraceMeta

_MAGIC = b"BTRC"
_VERSION = 1
_HEADER = struct.Struct("<4sHHQ")  # magic, version, reserved, record count
_RECORD = struct.Struct("<qBBqq")  # pc, flags, cls, target, instret
_FLAG_TAKEN = 0x01
_FLAG_TRAP = 0x02

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed."""


# ----------------------------------------------------------------------
# Text format
# ----------------------------------------------------------------------

def write_text(trace: Trace, stream: TextIO) -> None:
    """Write ``trace`` to ``stream`` in the text format.

    Layout: a ``#``-prefixed metadata header, then one record per line:
    ``pc taken cls target instret trap``.
    """
    meta = trace.meta
    stream.write(f"# name={meta.name}\n")
    stream.write(f"# dataset={meta.dataset}\n")
    stream.write(f"# source={meta.source}\n")
    stream.write(f"# total_instructions={meta.total_instructions}\n")
    stream.write(f"# records={len(trace)}\n")
    for pc, taken, cls, target, instret, trap in trace.iter_tuples():
        stream.write(
            f"{pc} {int(taken)} {BranchClass(cls).short_name} {target} {instret} {int(trap)}\n"
        )


def read_text(stream: TextIO) -> Trace:
    """Read a trace written by :func:`write_text`."""
    meta_fields = {"name": "anonymous", "dataset": "", "source": "file", "total_instructions": "0"}
    short_to_cls = {c.short_name: c for c in BranchClass}
    pc, taken, cls, target, instret, trap = [], [], [], [], [], []
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if "=" in body:
                key, _, value = body.partition("=")
                key = key.strip()
                if key in meta_fields:
                    meta_fields[key] = value.strip()
            continue
        parts = line.split()
        if len(parts) != 6:
            raise TraceFormatError(f"line {lineno}: expected 6 fields, got {len(parts)}")
        try:
            pc.append(int(parts[0]))
            taken.append(bool(int(parts[1])))
            cls.append(int(short_to_cls[parts[2]]))
            target.append(int(parts[3]))
            instret.append(int(parts[4]))
            trap.append(bool(int(parts[5])))
        except (ValueError, KeyError) as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
    meta = TraceMeta(
        name=meta_fields["name"],
        dataset=meta_fields["dataset"],
        source=meta_fields["source"],
        total_instructions=int(meta_fields["total_instructions"]),
    )
    return Trace(meta, pc, taken, cls, target, instret, trap)


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------

def write_binary(trace: Trace, stream: BinaryIO) -> None:
    """Write ``trace`` to ``stream`` in the packed binary format."""
    meta = trace.meta
    stream.write(_HEADER.pack(_MAGIC, _VERSION, 0, len(trace)))
    _write_string(stream, meta.name)
    _write_string(stream, meta.dataset)
    _write_string(stream, meta.source)
    stream.write(struct.pack("<q", meta.total_instructions))
    pack = _RECORD.pack
    for pc, taken, cls, target, instret, trap in trace.iter_tuples():
        flags = (_FLAG_TAKEN if taken else 0) | (_FLAG_TRAP if trap else 0)
        stream.write(pack(pc, flags, cls, target, instret))


def read_binary(stream: BinaryIO) -> Trace:
    """Read a trace written by :func:`write_binary`."""
    header = stream.read(_HEADER.size)
    if len(header) != _HEADER.size:
        raise TraceFormatError("truncated header")
    magic, version, _, count = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}")
    if version != _VERSION:
        raise TraceFormatError(f"unsupported version {version}")
    name = _read_string(stream)
    dataset = _read_string(stream)
    source = _read_string(stream)
    (total_instructions,) = struct.unpack("<q", _read_exact(stream, 8))
    meta = TraceMeta(name, dataset, source, total_instructions)
    pc, taken, cls, target, instret, trap = [], [], [], [], [], []
    unpack = _RECORD.unpack
    size = _RECORD.size
    payload = _read_exact(stream, size * count)
    for offset in range(0, size * count, size):
        r_pc, flags, r_cls, r_target, r_instret = unpack(payload[offset : offset + size])
        pc.append(r_pc)
        taken.append(bool(flags & _FLAG_TAKEN))
        cls.append(r_cls)
        target.append(r_target)
        instret.append(r_instret)
        trap.append(bool(flags & _FLAG_TRAP))
    return Trace(meta, pc, taken, cls, target, instret, trap)


def _write_string(stream: BinaryIO, value: str) -> None:
    data = value.encode("utf-8")
    stream.write(struct.pack("<I", len(data)))
    stream.write(data)


def _read_string(stream: BinaryIO) -> str:
    (length,) = struct.unpack("<I", _read_exact(stream, 4))
    return _read_exact(stream, length).decode("utf-8")


def _read_exact(stream: BinaryIO, size: int) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise TraceFormatError(f"truncated stream: wanted {size} bytes, got {len(data)}")
    return data


# ----------------------------------------------------------------------
# File-level helpers
# ----------------------------------------------------------------------

def save_trace(trace: Trace, path: PathLike) -> None:
    """Save ``trace`` to ``path``; format chosen by suffix.

    ``.btr`` selects the text format, anything else the binary format.
    """
    path = Path(path)
    if path.suffix == ".btr":
        with path.open("w") as stream:
            write_text(trace, stream)
    else:
        with path.open("wb") as stream:
            write_binary(trace, stream)


def load_trace(path: PathLike) -> Trace:
    """Load a trace saved by :func:`save_trace`."""
    path = Path(path)
    if path.suffix == ".btr":
        with path.open() as stream:
            return read_text(stream)
    with path.open("rb") as stream:
        return read_binary(stream)


def trace_from_records(records: Iterable[BranchRecord], name: str = "anonymous", dataset: str = "", source: str = "records") -> Trace:
    """Build a trace from an iterable of :class:`BranchRecord`.

    ``instret`` values in the records are preserved verbatim.
    """
    pc, taken, cls, target, instret, trap = [], [], [], [], [], []
    for record in records:
        pc.append(record.pc)
        taken.append(record.taken)
        cls.append(int(record.branch_class))
        target.append(record.target)
        instret.append(record.instret)
        trap.append(record.trap)
    total = instret[-1] if instret else 0
    meta = TraceMeta(name=name, dataset=dataset, source=source, total_instructions=total)
    return Trace(meta, pc, taken, cls, target, instret, trap)


def dumps(trace: Trace) -> bytes:
    """Serialize ``trace`` to bytes (binary format)."""
    buffer = io.BytesIO()
    write_binary(trace, buffer)
    return buffer.getvalue()


def loads(data: bytes) -> Trace:
    """Deserialize a trace from bytes produced by :func:`dumps`."""
    return read_binary(io.BytesIO(data))
