"""Trace statistics.

Computes the descriptive statistics the paper reports about its traces:

* Table 1 — number of static conditional branches per benchmark.
* Figure 4 — distribution of dynamic branch instructions over the four
  branch classes (the paper finds ~80 % conditional).
* Section 4.1 prose — fraction of dynamic instructions that are branches
  (~24 % for integer benchmarks, ~5 % for floating point).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Mapping

from .events import BranchClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .stream import TraceSource


@dataclass(frozen=True)
class BranchClassMix:
    """Fractions of dynamic branches per class (sums to 1 when counts > 0)."""

    conditional: float
    unconditional: float
    call: float
    ret: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "cond": self.conditional,
            "uncond": self.unconditional,
            "call": self.call,
            "return": self.ret,
        }


@dataclass(frozen=True)
class TraceStats:
    """Descriptive statistics for one trace."""

    name: str
    dataset: str
    dynamic_branches: int
    dynamic_conditional: int
    static_conditional_sites: int
    total_instructions: int
    class_counts: Mapping[BranchClass, int] = field(default_factory=dict)
    taken_conditional: int = 0
    trap_count: int = 0

    @property
    def branch_fraction(self) -> float:
        """Fraction of dynamic instructions that are branches."""
        if self.total_instructions == 0:
            return 0.0
        return self.dynamic_branches / self.total_instructions

    @property
    def conditional_fraction(self) -> float:
        """Fraction of dynamic branches that are conditional (Figure 4)."""
        if self.dynamic_branches == 0:
            return 0.0
        return self.dynamic_conditional / self.dynamic_branches

    @property
    def taken_rate(self) -> float:
        """Fraction of conditional branches that are taken."""
        if self.dynamic_conditional == 0:
            return 0.0
        return self.taken_conditional / self.dynamic_conditional

    def class_mix(self) -> BranchClassMix:
        total = self.dynamic_branches or 1
        return BranchClassMix(
            conditional=self.class_counts.get(BranchClass.CONDITIONAL, 0) / total,
            unconditional=self.class_counts.get(BranchClass.UNCONDITIONAL, 0) / total,
            call=self.class_counts.get(BranchClass.CALL, 0) / total,
            ret=self.class_counts.get(BranchClass.RETURN, 0) / total,
        )


def compute_stats(trace: "TraceSource") -> TraceStats:
    """Compute :class:`TraceStats` for ``trace`` in one pass.

    Accepts any bounded :class:`~repro.trace.stream.TraceSource` — an
    mmap-backed container streams through in bounded memory, since only
    running counters and the static-site set are held.
    """
    class_counts: Counter = Counter()
    static_sites = set()
    taken_conditional = 0
    trap_count = 0
    dynamic = 0
    for pc, taken, cls, _target, _instret, trap in trace.iter_tuples():
        class_counts[BranchClass(cls)] += 1
        dynamic += 1
        if cls == BranchClass.CONDITIONAL:
            static_sites.add(pc)
            if taken:
                taken_conditional += 1
        if trap:
            trap_count += 1
    return TraceStats(
        name=trace.meta.name,
        dataset=trace.meta.dataset,
        dynamic_branches=dynamic,
        dynamic_conditional=class_counts.get(BranchClass.CONDITIONAL, 0),
        static_conditional_sites=len(static_sites),
        total_instructions=trace.meta.total_instructions,
        class_counts=dict(class_counts),
        taken_conditional=taken_conditional,
        trap_count=trap_count,
    )


def per_site_bias(trace: "TraceSource") -> Dict[int, float]:
    """Taken-rate per static conditional branch site.

    Useful for profiling-based prediction and interference analysis.
    Accepts any bounded :class:`~repro.trace.stream.TraceSource`.
    """
    taken: Counter = Counter()
    total: Counter = Counter()
    for pc, was_taken, cls, _target, _instret, _trap in trace.iter_tuples():
        if cls != BranchClass.CONDITIONAL:
            continue
        total[pc] += 1
        if was_taken:
            taken[pc] += 1
    return {pc: taken[pc] / total[pc] for pc in total}
