"""Streaming, out-of-core trace substrate.

The in-memory :class:`repro.trace.events.Trace` caps workload size at
whatever fits in RAM. This module removes that cap with three pieces:

* **The BTRS container** (``.btrs``) — a versioned, mmap-friendly
  binary file holding the same packed 26-byte records as the ``.btb``
  format, preceded by a fixed-size header that records where the data
  starts. :class:`TraceWriter` appends records incrementally and
  finalizes atomically; :func:`open_stream` maps a finished container
  back as a :class:`StreamedTrace` without loading it. The byte-level
  layout is specified in ``docs/traces.md``.
* **The ``TraceSource`` protocol** — anything with ``meta``,
  ``num_records``, ``iter_blocks(block_size)`` and ``iter_tuples()``.
  :class:`repro.trace.events.Trace`, :class:`StreamedTrace`,
  :class:`RecordStreamSource` (wrapping generator functions such as
  the record generators in :mod:`repro.trace.synthetic`) and
  :class:`IndexedSource` (closed-form array generation for streams of
  arbitrary length) all implement it, and
  :func:`repro.sim.engine.simulate` accepts any of them.
* **Bounded-memory helpers** — :func:`save_source` stream-copies a
  source to any trace format, and :func:`content_digest` computes the
  same sha256 the result cache keys on
  (:func:`repro.sim.parallel.trace_digest`) without materializing the
  records.

Memory guarantee: iterating a :class:`StreamedTrace` in blocks keeps
peak resident memory proportional to ``block_size`` (each block's
columns are copied out of the map and the consumed pages are released
with ``madvise(MADV_DONTNEED)`` where available), never to the trace
length. The RSS smoke test in ``tests/test_sim_stream.py`` pins this.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Protocol, Sequence, Tuple, Union, runtime_checkable

from .events import BranchClass, BranchRecord, Trace, TraceBlock, TraceMeta
from .io import (
    _FLAG_TAKEN,
    _FLAG_TRAP,
    _HEADER,
    _MAGIC,
    _RECORD,
    _VERSION,
    PathLike,
    TraceFormatError,
    load_trace,
)

try:  # NumPy accelerates block packing/unpacking but is optional here.
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "IndexedSource",
    "RecordStreamSource",
    "STREAM_MAGIC",
    "STREAM_VERSION",
    "StreamedTrace",
    "TraceSource",
    "TraceWriter",
    "bernoulli_outcomes",
    "content_digest",
    "iter_source_tuples",
    "open_stream",
    "open_trace_source",
    "pattern_outcomes",
    "save_source",
]

#: Default records per block for streamed iteration. 2^16 records is
#: ~1.7 MB of packed data — large enough that per-block kernel overhead
#: is amortized (see ``benchmarks/test_bench_stream.py``), small enough
#: that dozens of concurrent streams fit in cache.
DEFAULT_BLOCK_SIZE = 1 << 16

#: BTRS container magic / version (see ``docs/traces.md``).
STREAM_MAGIC = b"BTRS"
STREAM_VERSION = 1

#: Fixed header: magic, version, reserved, record count, data offset,
#: total instruction count. Strings (name/dataset/source) follow.
_STREAM_HEADER = struct.Struct("<4sHHQQq")

_RECORD_SIZE = _RECORD.size
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


@runtime_checkable
class TraceSource(Protocol):
    """What the simulation engine needs from a trace, streamed or not.

    Contract (see ``docs/traces.md`` for the full statement):

    * ``meta`` — the :class:`TraceMeta` identifying the stream.
    * ``num_records`` — total record count, or ``None`` when the
      source is unbounded (synthetic generators); unbounded sources
      must be bounded with ``limit(n)`` before simulation.
    * ``iter_blocks(block_size)`` — yield the records, in order,
      partitioned into :class:`TraceBlock` windows of at most
      ``block_size`` records; the partition must not change record
      content or order (simulating at any block size is bit-identical).
      ``block_size=None`` means "one block" for bounded sources.
    * ``iter_tuples()`` — yield plain ``(pc, taken, cls, target,
      instret, trap)`` tuples, equivalent to chaining the blocks.

    Iteration must be repeatable: each call starts from the first
    record again.
    """

    meta: TraceMeta

    @property
    def num_records(self) -> Optional[int]:
        """Total records, or ``None`` for an unbounded stream."""
        ...

    def iter_blocks(self, block_size: Optional[int] = None) -> Iterator[TraceBlock]:
        """Yield the records as bounded :class:`TraceBlock` windows."""
        ...

    def iter_tuples(self) -> Iterator[Tuple[int, bool, int, int, int, bool]]:
        """Yield ``(pc, taken, cls, target, instret, trap)`` tuples."""
        ...


def iter_source_tuples(
    source: TraceSource, block_size: Optional[int] = None
) -> Iterator[Tuple[int, bool, int, int, int, bool]]:
    """Yield a source's record tuples, optionally via block iteration.

    ``block_size=None`` defers to the source's own ``iter_tuples``;
    any explicit size walks ``iter_blocks(block_size)`` instead, which
    bounds peak memory for out-of-core sources. Both paths yield the
    identical record sequence (the :class:`TraceSource` contract), so
    analysis passes built on this helper are block-size invariant —
    ``tests/test_analysis.py`` pins that for the attribution layer.
    """
    if block_size is None:
        yield from source.iter_tuples()
        return
    for block in source.iter_blocks(block_size):
        yield from block.iter_tuples()


# ----------------------------------------------------------------------
# Record packing shared by the writer, the digest and save_source
# ----------------------------------------------------------------------

def _pack_columns(pc, taken, cls, target, instret, trap) -> bytes:
    """Serialize one block of columns to packed record bytes.

    Accepts lists or NumPy arrays; validates ranges and reports a
    :class:`TraceFormatError` (never a bare ``struct`` error).
    """
    n = len(pc)
    if _np is not None:
        records = _np.empty(n, dtype=_record_dtype())
        try:
            records["pc"] = _np.asarray(pc, dtype=_np.int64)
            records["cls"] = _np.asarray(cls, dtype=_np.uint8)
            records["target"] = _np.asarray(target, dtype=_np.int64)
            records["instret"] = _np.asarray(instret, dtype=_np.int64)
        except (OverflowError, ValueError) as exc:
            raise TraceFormatError(f"trace column out of range: {exc}") from exc
        flags = _np.asarray(taken, dtype=_np.uint8) * _FLAG_TAKEN
        flags |= _np.asarray(trap, dtype=_np.uint8) * _FLAG_TRAP
        records["flags"] = flags
        return records.tobytes()
    pack = _RECORD.pack
    chunks = []
    for i in range(n):
        flag = (_FLAG_TAKEN if taken[i] else 0) | (_FLAG_TRAP if trap[i] else 0)
        try:
            chunks.append(pack(int(pc[i]), flag, int(cls[i]), int(target[i]), int(instret[i])))
        except struct.error as exc:
            raise TraceFormatError(f"record {i} out of range: {exc}") from exc
    return b"".join(chunks)


def _record_dtype():
    """NumPy structured dtype matching the packed record byte-for-byte."""
    return _np.dtype([
        ("pc", "<i8"), ("flags", "u1"), ("cls", "u1"),
        ("target", "<i8"), ("instret", "<i8"),
    ])


def _unpack_block(meta: TraceMeta, start: int, payload) -> TraceBlock:
    """Decode packed record bytes into a :class:`TraceBlock`.

    The returned columns are fresh arrays (or lists) owning their
    memory — never views into ``payload`` — so callers may release the
    underlying buffer immediately.
    """
    if _np is not None:
        records = _np.frombuffer(payload, dtype=_record_dtype())
        flags = records["flags"]
        return TraceBlock(
            meta, start,
            records["pc"].astype(_np.int64),
            (flags & _FLAG_TAKEN) != 0,
            records["cls"].astype(_np.uint8),
            records["target"].astype(_np.int64),
            records["instret"].astype(_np.int64),
            (flags & _FLAG_TRAP) != 0,
        )
    pc, taken, cls, target, instret, trap = [], [], [], [], [], []
    for r_pc, flags, r_cls, r_target, r_instret in _RECORD.iter_unpack(payload):
        pc.append(r_pc)
        taken.append(bool(flags & _FLAG_TAKEN))
        cls.append(r_cls)
        target.append(r_target)
        instret.append(r_instret)
        trap.append(bool(flags & _FLAG_TRAP))
    return TraceBlock(meta, start, pc, taken, cls, target, instret, trap)


def _pack_string(value: str) -> bytes:
    data = value.encode("utf-8")
    return struct.pack("<I", len(data)) + data


def _normalize_block_size(block_size: Optional[int], total: Optional[int]) -> int:
    if block_size is None:
        if total is None:
            raise ValueError(
                "iter_blocks(None) needs a bounded source; pass an explicit "
                "block_size or bound the stream with limit(n)"
            )
        return max(int(total), 1)
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    return int(block_size)


# ----------------------------------------------------------------------
# The BTRS container: writer
# ----------------------------------------------------------------------

class TraceWriter:
    """Incremental writer for the BTRS streamed-trace container.

    Records are appended in bounded batches and buffered to ~1 MB
    writes; nothing is visible at ``path`` until :meth:`finalize`
    patches the header (record count, total instructions), flushes,
    fsyncs and atomically renames the unique temporary sibling into
    place. A crashed or aborted write therefore never leaves a partial
    container at ``path``. Usable as a context manager: a clean exit
    finalizes, an exception aborts and removes the temporary.
    """

    _BUFFER_BYTES = 1 << 20

    def __init__(self, path: PathLike, name: str = "anonymous", dataset: str = "",
                 source: str = "stream") -> None:
        """Args:
            path: final container path (conventionally ``.btrs``).
            name / dataset / source: :class:`TraceMeta` identity fields
                stored in the header.
        """
        self._path = Path(path)
        self._tmp = self._path.with_name(
            f"{self._path.name}.tmp-{os.getpid()}-{id(self):x}"
        )
        self._name = name
        self._dataset = dataset
        self._source = source
        self._count = 0
        self._last_instret = 0
        self._closed = False
        self._pending: list = []
        self._pending_bytes = 0
        strings = _pack_string(name) + _pack_string(dataset) + _pack_string(source)
        self._data_offset = _STREAM_HEADER.size + len(strings)
        self._file = self._tmp.open("wb")
        try:
            # Count and total are placeholders until finalize();
            # readers can never observe them because the file only
            # appears at `path` after the patched rename.
            self._file.write(_STREAM_HEADER.pack(
                STREAM_MAGIC, STREAM_VERSION, 0, 0, self._data_offset, 0
            ))
            self._file.write(strings)
        except BaseException:
            self.abort()
            raise

    @property
    def count(self) -> int:
        """Records appended so far."""
        return self._count

    @property
    def path(self) -> Path:
        """The final container path."""
        return self._path

    def append(self, record: BranchRecord) -> None:
        """Append one :class:`BranchRecord`."""
        self.append_tuples([(record.pc, record.taken, int(record.branch_class),
                             record.target, record.instret, record.trap)])

    def append_tuples(self, tuples: Iterable[Tuple[int, bool, int, int, int, bool]]) -> None:
        """Append an iterable of ``(pc, taken, cls, target, instret, trap)``."""
        pack = _RECORD.pack
        data = []
        last = self._last_instret
        n = 0
        try:
            for pc, taken, cls, target, instret, trap in tuples:
                flag = (_FLAG_TAKEN if taken else 0) | (_FLAG_TRAP if trap else 0)
                data.append(pack(pc, flag, cls, target, instret))
                last = instret
                n += 1
        except struct.error as exc:
            raise TraceFormatError(
                f"record {self._count + n} out of range: {exc}"
            ) from exc
        self._write(b"".join(data), n, last)

    def append_block(self, block) -> None:
        """Append a :class:`TraceBlock` (or any object with ``columns``)."""
        columns = block.columns
        n = len(columns[0])
        if n == 0:
            return
        payload = _pack_columns(*columns)
        instret = columns[4]
        last = int(instret[-1]) if hasattr(instret, "tolist") else instret[-1]
        self._write(payload, n, last)

    def append_trace(self, trace: Trace) -> None:
        """Append every record of an in-memory :class:`Trace`."""
        self.append_block(trace)

    def _write(self, payload: bytes, n: int, last_instret: int) -> None:
        if self._closed:
            raise ValueError("writer is closed")
        self._pending.append(payload)
        self._pending_bytes += len(payload)
        self._count += n
        if n:
            self._last_instret = int(last_instret)
        if self._pending_bytes >= self._BUFFER_BYTES:
            self._flush()

    def _flush(self) -> None:
        if self._pending:
            self._file.write(b"".join(self._pending))
            self._pending.clear()
            self._pending_bytes = 0

    def finalize(self, total_instructions: Optional[int] = None) -> Path:
        """Patch the header, fsync, and atomically publish the container.

        Args:
            total_instructions: the run's dynamic instruction count;
                defaults to the last appended record's ``instret``.

        Returns:
            The final path (now existing).
        """
        if self._closed:
            raise ValueError("writer is closed")
        total = self._last_instret if total_instructions is None else int(total_instructions)
        if not (_INT64_MIN <= total <= _INT64_MAX):
            raise TraceFormatError(f"total_instructions={total} out of range")
        self._flush()
        self._file.seek(0)
        self._file.write(_STREAM_HEADER.pack(
            STREAM_MAGIC, STREAM_VERSION, 0, self._count, self._data_offset, total
        ))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._closed = True
        os.replace(self._tmp, self._path)
        return self._path

    def abort(self) -> None:
        """Discard everything written; removes the temporary file."""
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            try:
                self._tmp.unlink()
            except OSError:
                pass

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if not self._closed:
                self.finalize()
        else:
            self.abort()


# ----------------------------------------------------------------------
# The BTRS container: reader
# ----------------------------------------------------------------------

class StreamedTrace:
    """An mmap-backed, bounded-memory view of a BTRS container.

    Satisfies the :class:`TraceSource` protocol. Header and metadata
    are validated eagerly (bad magic, unsupported version, or a file
    shorter than ``data_offset + 26 * record_count`` raise
    :class:`TraceFormatError`); record data is only touched as blocks
    are iterated. Each yielded block owns copies of its columns, and
    the pages the block was decoded from are released back to the OS
    (``madvise(MADV_DONTNEED)``) before the next block is produced, so
    resident memory tracks the block size, not the file size.
    """

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path)
        self._file = self._path.open("rb")
        try:
            self._read_header()
        except BaseException:
            self._file.close()
            raise
        self._mmap: Optional[mmap.mmap] = None

    def _read_header(self) -> None:
        header = self._file.read(_STREAM_HEADER.size)
        if len(header) != _STREAM_HEADER.size:
            raise TraceFormatError("truncated container header")
        magic, version, _, count, data_offset, total = _STREAM_HEADER.unpack(header)
        if magic != STREAM_MAGIC:
            raise TraceFormatError(f"bad container magic {magic!r}")
        if version != STREAM_VERSION:
            raise TraceFormatError(f"unsupported container version {version}")
        name = self._read_string()
        dataset = self._read_string()
        source = self._read_string()
        if data_offset < self._file.tell():
            raise TraceFormatError("data offset overlaps the container header")
        size = os.fstat(self._file.fileno()).st_size
        need = data_offset + _RECORD_SIZE * count
        if size < need:
            raise TraceFormatError(
                f"truncated container: header promises {count} records "
                f"({need} bytes), file holds {size}"
            )
        self.meta = TraceMeta(name=name, dataset=dataset, source=source,
                              total_instructions=total)
        self._count = count
        self._data_offset = data_offset

    def _read_string(self) -> str:
        raw = self._file.read(4)
        if len(raw) != 4:
            raise TraceFormatError("truncated container header string")
        (length,) = struct.unpack("<I", raw)
        data = self._file.read(length)
        if len(data) != length:
            raise TraceFormatError("truncated container header string")
        return data.decode("utf-8")

    @property
    def path(self) -> Path:
        """The container file."""
        return self._path

    @property
    def num_records(self) -> int:
        """Record count from the header (``TraceSource`` protocol)."""
        return self._count

    @property
    def data_offset(self) -> int:
        """Byte offset of the first packed record (from the header)."""
        return self._data_offset

    def __len__(self) -> int:
        return self._count

    def iter_blocks(self, block_size: Optional[int] = None) -> Iterator[TraceBlock]:
        """Yield the records as blocks of at most ``block_size``.

        ``None`` yields everything as one block (the bounded-memory
        guarantee then degenerates to the file size — pass an explicit
        size, e.g. :data:`DEFAULT_BLOCK_SIZE`, for large containers).
        """
        bs = _normalize_block_size(block_size, self._count)
        if self._count == 0:
            return
        if self._mmap is None:
            self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        mm = self._mmap
        released = self._data_offset
        for start in range(0, self._count, bs):
            m = min(bs, self._count - start)
            offset = self._data_offset + start * _RECORD_SIZE
            if _np is not None:
                # Decode straight out of the map; every column below is
                # a fresh owning array, so the pages can be released.
                records = _np.frombuffer(mm, dtype=_record_dtype(), count=m, offset=offset)
                flags = records["flags"]
                block = TraceBlock(
                    self.meta, start,
                    records["pc"].astype(_np.int64),
                    (flags & _FLAG_TAKEN) != 0,
                    records["cls"].astype(_np.uint8),
                    records["target"].astype(_np.int64),
                    records["instret"].astype(_np.int64),
                    (flags & _FLAG_TRAP) != 0,
                )
            else:
                block = _unpack_block(self.meta, start, mm[offset: offset + m * _RECORD_SIZE])
            yield block
            released = self._release(released, offset + m * _RECORD_SIZE)

    def _release(self, released: int, upto: int) -> int:
        """Drop consumed, fully-read pages from resident memory."""
        if not (hasattr(mmap, "MADV_DONTNEED") and self._mmap is not None):
            return upto  # pragma: no cover - non-Linux fallback
        page = mmap.PAGESIZE
        lo = (released // page) * page
        hi = (upto // page) * page
        if hi > lo:
            try:
                self._mmap.madvise(mmap.MADV_DONTNEED, lo, hi - lo)
            except (OSError, ValueError):  # pragma: no cover - advisory only
                pass
        return upto

    def iter_tuples(self) -> Iterator[Tuple[int, bool, int, int, int, bool]]:
        """Stream plain record tuples (bounded by the default block size)."""
        for block in self.iter_blocks(DEFAULT_BLOCK_SIZE):
            yield from block.iter_tuples()

    def materialize(self) -> Trace:
        """Load the whole container into an in-memory :class:`Trace`."""
        pc, taken, cls, target, instret, trap = [], [], [], [], [], []
        for block in self.iter_blocks(DEFAULT_BLOCK_SIZE):
            cols = [c.tolist() if hasattr(c, "tolist") else c for c in block.columns]
            pc.extend(cols[0]); taken.extend(cols[1]); cls.extend(cols[2])
            target.extend(cols[3]); instret.extend(cols[4]); trap.extend(cols[5])
        return Trace(self.meta, pc, taken, cls, target, instret, trap)

    def head(self, n: int) -> Trace:
        """The first ``n`` records as an in-memory :class:`Trace`."""
        pc, taken, cls, target, instret, trap = [], [], [], [], [], []
        remaining = min(int(n), self._count)
        for block in self.iter_blocks(min(DEFAULT_BLOCK_SIZE, max(remaining, 1))):
            if remaining <= 0:
                break
            cols = [c.tolist() if hasattr(c, "tolist") else c for c in block.columns]
            take = min(remaining, len(cols[0]))
            pc.extend(cols[0][:take]); taken.extend(cols[1][:take])
            cls.extend(cols[2][:take]); target.extend(cols[3][:take])
            instret.extend(cols[4][:take]); trap.extend(cols[5][:take])
            remaining -= take
        return Trace(self.meta, pc, taken, cls, target, instret, trap)

    def close(self) -> None:
        """Release the map and the file handle."""
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "StreamedTrace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"StreamedTrace(path={str(self._path)!r}, records={self._count}, "
            f"name={self.meta.name!r})"
        )


def open_stream(path: PathLike) -> StreamedTrace:
    """Open a BTRS container written by :class:`TraceWriter`.

    Validates the header eagerly; record data stays on disk until
    iterated. Raises :class:`TraceFormatError` for a malformed or
    truncated container.
    """
    return StreamedTrace(path)


# ----------------------------------------------------------------------
# Synthetic / generator-backed sources
# ----------------------------------------------------------------------

def _as_record_tuple(record) -> Tuple[int, bool, int, int, int, bool]:
    if isinstance(record, BranchRecord):
        return (record.pc, record.taken, int(record.branch_class),
                record.target, record.instret, record.trap)
    return tuple(record)


class RecordStreamSource:
    """A :class:`TraceSource` over a re-iterable record generator.

    Wraps a zero-argument factory returning a fresh iterator of
    :class:`BranchRecord` (or plain 6-tuples) — for example the
    ``*_records`` generators in :mod:`repro.trace.synthetic` — and
    exposes it through the block/tuple protocol. The factory may be
    infinite; such a source reports ``num_records=None`` and must be
    bounded with :meth:`limit` before it can be simulated or saved.
    """

    def __init__(self, factory: Callable[[], Iterable],
                 name: str = "stream", dataset: str = "", source: str = "synthetic",
                 num_records: Optional[int] = None,
                 total_instructions: int = 0) -> None:
        """Args:
            factory: zero-argument callable returning a fresh record
                iterator; called once per traversal.
            name / dataset / source: :class:`TraceMeta` identity.
            num_records: bound on the stream length (``None`` =
                unbounded); iteration stops at the bound even when the
                factory yields more.
            total_instructions: recorded in ``meta``; 0 when unknown.
        """
        self._factory = factory
        self._num_records = num_records
        self.meta = TraceMeta(name=name, dataset=dataset, source=source,
                              total_instructions=total_instructions)

    @property
    def num_records(self) -> Optional[int]:
        """The stream bound, or ``None`` when indefinite."""
        return self._num_records

    def limit(self, n: int, total_instructions: Optional[int] = None) -> "RecordStreamSource":
        """A bounded copy of this source stopping after ``n`` records."""
        return RecordStreamSource(
            self._factory,
            name=self.meta.name, dataset=self.meta.dataset, source=self.meta.source,
            num_records=int(n),
            total_instructions=(self.meta.total_instructions
                                if total_instructions is None else total_instructions),
        )

    def iter_tuples(self) -> Iterator[Tuple[int, bool, int, int, int, bool]]:
        """Stream normalized record tuples, honouring the bound."""
        remaining = self._num_records
        for record in self._factory():
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            yield _as_record_tuple(record)

    def iter_blocks(self, block_size: Optional[int] = None) -> Iterator[TraceBlock]:
        """Buffer the generator into list-backed :class:`TraceBlock` s."""
        bs = _normalize_block_size(block_size, self._num_records)
        pc, taken, cls, target, instret, trap = [], [], [], [], [], []
        start = 0
        for tup in self.iter_tuples():
            pc.append(tup[0]); taken.append(tup[1]); cls.append(tup[2])
            target.append(tup[3]); instret.append(tup[4]); trap.append(tup[5])
            if len(pc) >= bs:
                yield TraceBlock(self.meta, start, pc, taken, cls, target, instret, trap)
                start += len(pc)
                pc, taken, cls, target, instret, trap = [], [], [], [], [], []
        if pc:
            yield TraceBlock(self.meta, start, pc, taken, cls, target, instret, trap)


def _splitmix64(x):
    """SplitMix64 finalizer over a uint64 array — a stateless, seedable
    hash whose output for index ``i`` is independent of block
    partitioning (the partition-independence the equivalence pins rely
    on)."""
    z = (x + _np.uint64(0x9E3779B97F4A7C15))
    z = (z ^ (z >> _np.uint64(30))) * _np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> _np.uint64(27))) * _np.uint64(0x94D049BB133111EB)
    return z ^ (z >> _np.uint64(31))


def bernoulli_outcomes(taken_probability: float, seed: int = 0):
    """Outcome function for :class:`IndexedSource`: i.i.d. Bernoulli
    directions, ``P(taken) = taken_probability``, derived from a
    SplitMix64 hash of (seed, index) so any sub-range of the stream is
    reproducible without generating its prefix."""
    if _np is None:  # pragma: no cover - the container ships numpy
        raise RuntimeError("bernoulli_outcomes requires NumPy")
    if not 0.0 <= taken_probability <= 1.0:
        raise ValueError("taken_probability must be within [0, 1]")
    threshold = _np.uint64(int(taken_probability * float(1 << 53)))

    def outcomes(indices):
        with _np.errstate(over="ignore"):
            h = _splitmix64(indices.astype(_np.uint64)
                            + _np.uint64(seed) * _np.uint64(0xD1B54A32D192ED03))
        return (h >> _np.uint64(11)) < threshold

    return outcomes


def pattern_outcomes(pattern: Sequence[bool]):
    """Outcome function for :class:`IndexedSource`: the fixed direction
    ``pattern`` repeated indefinitely (``pattern[i % len]``)."""
    if not pattern:
        raise ValueError("pattern must be non-empty")
    materialized = _np.asarray([bool(b) for b in pattern], dtype=_np.bool_)

    def outcomes(indices):
        return materialized[indices % len(materialized)]

    return outcomes


class IndexedSource:
    """A closed-form synthetic :class:`TraceSource` of arbitrary length.

    Record ``i`` is a pure function of ``i``: the pc round-robins over
    ``pcs``, the direction comes from ``outcome_fn(indices)`` (see
    :func:`bernoulli_outcomes` / :func:`pattern_outcomes`), and
    ``instret[i] = (i + 1) * (work_per_branch + 1)`` — the same
    accounting the builder-based generators in
    :mod:`repro.trace.synthetic` produce for pure-conditional streams.
    Because nothing depends on earlier records, generating block
    ``[a, b)`` costs O(b - a): a 10M-branch stream needs no 10M-record
    buffer anywhere. Requires NumPy.
    """

    def __init__(self, outcome_fn: Callable, num_records: Optional[int] = None,
                 pcs: Sequence[int] = (0x9000,), work_per_branch: int = 4,
                 name: str = "indexed", dataset: str = "") -> None:
        """Args:
            outcome_fn: maps an int64 index array to a bool direction
                array of the same shape.
            num_records: stream bound (``None`` = unbounded).
            pcs: static site ids, assigned round-robin.
            work_per_branch: non-branch instructions per branch.
        """
        if _np is None:  # pragma: no cover - the container ships numpy
            raise RuntimeError("IndexedSource requires NumPy")
        if not pcs:
            raise ValueError("need at least one pc")
        if work_per_branch < 0:
            raise ValueError("work_per_branch must be >= 0")
        self._outcome_fn = outcome_fn
        self._num_records = num_records
        self._pcs = _np.asarray(list(pcs), dtype=_np.int64)
        self._step = work_per_branch + 1
        total = 0 if num_records is None else num_records * self._step
        self.meta = TraceMeta(name=name, dataset=dataset, source="synthetic",
                              total_instructions=total)

    @property
    def num_records(self) -> Optional[int]:
        """The stream bound, or ``None`` when indefinite."""
        return self._num_records

    def limit(self, n: int) -> "IndexedSource":
        """A bounded copy of this source stopping after ``n`` records."""
        clone = IndexedSource(
            self._outcome_fn, num_records=int(n), pcs=self._pcs.tolist(),
            work_per_branch=self._step - 1, name=self.meta.name,
            dataset=self.meta.dataset,
        )
        return clone

    def iter_blocks(self, block_size: Optional[int] = None) -> Iterator[TraceBlock]:
        """Generate blocks in closed form; any partition yields the
        identical record sequence."""
        bs = _normalize_block_size(block_size, self._num_records)
        total = self._num_records
        start = 0
        while total is None or start < total:
            m = bs if total is None else min(bs, total - start)
            idx = _np.arange(start, start + m, dtype=_np.int64)
            taken = _np.asarray(self._outcome_fn(idx), dtype=_np.bool_)
            yield TraceBlock(
                self.meta, start,
                self._pcs[idx % len(self._pcs)],
                taken,
                _np.zeros(m, dtype=_np.uint8),
                _np.zeros(m, dtype=_np.int64),
                (idx + 1) * self._step,
                _np.zeros(m, dtype=_np.bool_),
            )
            start += m

    def iter_tuples(self) -> Iterator[Tuple[int, bool, int, int, int, bool]]:
        """Stream plain record tuples (blocks of the default size)."""
        for block in self.iter_blocks(DEFAULT_BLOCK_SIZE):
            yield from block.iter_tuples()


# ----------------------------------------------------------------------
# Stream-copy, open-by-format, content digest
# ----------------------------------------------------------------------

def save_source(source: TraceSource, path: PathLike,
                block_size: Optional[int] = DEFAULT_BLOCK_SIZE) -> None:
    """Stream-copy any bounded :class:`TraceSource` to a trace file.

    The format is chosen by suffix exactly as in
    :func:`repro.trace.io.save_trace`: ``.btr`` text, ``.btrs``
    streamed container, anything else the ``.btb`` binary format. All
    three paths write through a temporary file and rename atomically,
    and none of them materializes more than one block at a time.
    """
    path = Path(path)
    total = source.num_records
    if total is None:
        raise ValueError("cannot save an unbounded source; bound it with limit(n)")
    if path.suffix == ".btrs":
        writer = TraceWriter(path, name=source.meta.name, dataset=source.meta.dataset,
                             source=source.meta.source)
        with writer:
            for block in source.iter_blocks(block_size):
                writer.append_block(block)
            writer.finalize(total_instructions=source.meta.total_instructions)
        return
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}-{id(source):x}")
    try:
        # fsync before publishing, exactly as TraceWriter.finalize does
        # for .btrs: rename-only publication can survive a crash that
        # the data does not (found by res/replace-without-fsync).
        if path.suffix == ".btr":
            with tmp.open("w") as stream:
                _write_text_streaming(source, stream, block_size)
                stream.flush()
                os.fsync(stream.fileno())
        else:
            with tmp.open("wb") as stream:
                stream.write(_binary_prefix(source.meta, total))
                for block in source.iter_blocks(block_size):
                    stream.write(_pack_columns(*block.columns))
                stream.flush()
                os.fsync(stream.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def _write_text_streaming(source: TraceSource, stream, block_size: Optional[int]) -> None:
    meta = source.meta
    stream.write(f"# name={meta.name}\n")
    stream.write(f"# dataset={meta.dataset}\n")
    stream.write(f"# source={meta.source}\n")
    stream.write(f"# total_instructions={meta.total_instructions}\n")
    stream.write(f"# records={source.num_records}\n")
    for key, value in meta.extra:
        stream.write(f"# {key}={value}\n")
    for block in source.iter_blocks(block_size):
        for pc, taken, cls, target, instret, trap in block.iter_tuples():
            stream.write(
                f"{pc} {int(taken)} {BranchClass(cls).short_name} "
                f"{target} {instret} {int(trap)}\n"
            )


def _binary_prefix(meta: TraceMeta, count: int) -> bytes:
    """The ``.btb`` v1 header + metadata bytes for ``count`` records —
    byte-identical to what :func:`repro.trace.io.write_binary` emits."""
    return (
        _HEADER.pack(_MAGIC, _VERSION, 0, count)
        + _pack_string(meta.name)
        + _pack_string(meta.dataset)
        + _pack_string(meta.source)
        + struct.pack("<q", meta.total_instructions)
    )


def open_trace_source(path: PathLike, missing_meta: str = "warn") -> Union[Trace, StreamedTrace]:
    """Open a trace file as the cheapest suitable :class:`TraceSource`.

    BTRS containers (by ``.btrs`` suffix or by sniffing the 4-byte
    magic) open as a :class:`StreamedTrace` without loading records;
    everything else loads through :func:`repro.trace.io.load_trace`
    into an in-memory :class:`Trace` (which is also a valid source).

    When span tracing is enabled (:mod:`repro.obs.spans`) the open is
    recorded as an ``"open_trace"`` span carrying the dispatch decision
    — an mmap-backed open is near-free while a full load is a real
    trace_load phase, and the trace viewer should show which one ran.
    """
    # Deferred obs import: trace is a foundation package and must not
    # import obs at module scope.
    from ..obs.spans import get_recorder as _get_span_recorder

    recorder = _get_span_recorder()
    path = Path(path)
    streamed = path.suffix == ".btrs" or _sniff_stream_magic(path)
    span_id = (
        recorder.push("open_trace", cat="trace", file=path.name, streamed=streamed)
        if recorder is not None
        else 0
    )
    try:
        if streamed:
            return open_stream(path)
        return load_trace(path, missing_meta=missing_meta)
    finally:
        if recorder is not None:
            recorder.pop_through(span_id)


def _sniff_stream_magic(path: Path) -> bool:
    if path.suffix == ".btr":
        return False  # text format; never magic-prefixed
    try:
        with path.open("rb") as stream:
            return stream.read(4) == STREAM_MAGIC
    except OSError:
        return False


def content_digest(source: TraceSource,
                   block_size: Optional[int] = DEFAULT_BLOCK_SIZE) -> str:
    """sha256 of the source's canonical ``.btb`` serialization.

    Computed one block at a time, so a multi-gigabyte container digests
    in bounded memory — and the digest equals
    ``hashlib.sha256(trace_dumps(materialized)).hexdigest()`` (the key
    :func:`repro.sim.parallel.trace_digest` produces), which is what
    lets streamed and in-memory copies of the same records share cache
    entries.
    """
    total = source.num_records
    if total is None:
        raise ValueError("cannot digest an unbounded source; bound it with limit(n)")
    digest = hashlib.sha256()
    digest.update(_binary_prefix(source.meta, total))
    for block in source.iter_blocks(block_size):
        digest.update(_pack_columns(*block.columns))
    return digest.hexdigest()
