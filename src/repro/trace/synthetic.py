"""Parametric synthetic branch traces.

These generators produce branch streams whose predictability properties
are known in closed form, which makes them ideal for unit tests and for
demonstrating *why* the two-level schemes win:

* :func:`loop_trace` — a loop branch taken ``n-1`` times then not taken,
  repeated. Any history register of length >= n predicts it perfectly
  after warm-up; a per-branch 2-bit counter mispredicts once per
  iteration of the exit.
* :func:`periodic_trace` — an arbitrary repeating direction pattern.
* :func:`biased_trace` — i.i.d. Bernoulli outcomes; no predictor can
  beat the bias, so measured accuracy should approach ``max(p, 1-p)``.
* :func:`correlated_pair_trace` — branch B's outcome equals branch A's
  previous outcome; global-history predictors (GAg) capture this, pure
  per-address ones cannot.
* :func:`markov_trace` — outcomes from a two-state Markov chain.
* :func:`interleaved` — round-robin interleaving of per-site generators,
  exercising first-level history interference.

Each materializing generator has an indefinitely-streaming ``*_records``
twin (:func:`loop_records`, :func:`periodic_records`,
:func:`biased_records`, :func:`markov_records`) yielding the same record
stream as plain tuples without bound — wrap one in
:class:`repro.trace.stream.RecordStreamSource` and ``.limit(n)`` it to
simulate or save arbitrarily long workloads in bounded memory.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Iterator, Sequence, Tuple

from .events import BranchClass, Trace, TraceBuilder

__all__ = [
    "OutcomeSource",
    "alternating_source",
    "biased_records",
    "biased_trace",
    "concat",
    "correlated_pair_trace",
    "interleaved",
    "loop_records",
    "loop_source",
    "loop_trace",
    "markov_records",
    "markov_trace",
    "pattern_source",
    "periodic_records",
    "periodic_trace",
]

#: One streamed branch record: ``(pc, taken, cls, target, instret, trap)``.
RecordTuple = Tuple[int, bool, int, int, int, bool]


def loop_trace(
    iterations: int,
    trip_count: int,
    pc: int = 0x1000,
    name: str = "loop",
    work_per_branch: int = 4,
) -> Trace:
    """A backward loop branch: taken ``trip_count - 1`` times, then exits.

    Args:
        iterations: how many times the whole loop is entered.
        trip_count: loop trip count (>= 1); the branch is taken
            ``trip_count - 1`` times then falls through once.
        pc: static site id of the loop branch.
        name: trace name.
        work_per_branch: non-branch instructions accounted per branch.
    """
    if trip_count < 1:
        raise ValueError("trip_count must be >= 1")
    builder = TraceBuilder(name=name, source="synthetic")
    for _ in range(iterations):
        for _ in range(trip_count - 1):
            builder.conditional(pc, True, work=work_per_branch)
        builder.conditional(pc, False, work=work_per_branch)
    return builder.build()


def periodic_trace(
    pattern: Sequence[bool],
    repeats: int,
    pc: int = 0x2000,
    name: str = "periodic",
    work_per_branch: int = 4,
) -> Trace:
    """A single branch following ``pattern`` repeated ``repeats`` times."""
    if not pattern:
        raise ValueError("pattern must be non-empty")
    builder = TraceBuilder(name=name, source="synthetic")
    for _ in range(repeats):
        for outcome in pattern:
            builder.conditional(pc, bool(outcome), work=work_per_branch)
    return builder.build()


def biased_trace(
    length: int,
    taken_probability: float,
    pc: int = 0x3000,
    seed: int = 0,
    name: str = "biased",
    work_per_branch: int = 4,
) -> Trace:
    """A single branch with i.i.d. outcomes, P(taken) = ``taken_probability``."""
    if not 0.0 <= taken_probability <= 1.0:
        raise ValueError("taken_probability must be within [0, 1]")
    rng = random.Random(seed)
    builder = TraceBuilder(name=name, source="synthetic")
    for _ in range(length):
        builder.conditional(pc, rng.random() < taken_probability, work=work_per_branch)
    return builder.build()


def correlated_pair_trace(
    length: int,
    pc_a: int = 0x4000,
    pc_b: int = 0x4010,
    taken_probability: float = 0.5,
    seed: int = 0,
    name: str = "correlated-pair",
    work_per_branch: int = 4,
) -> Trace:
    """Two alternating branches where B repeats A's outcome.

    Branch A's outcomes are i.i.d.; branch B always resolves to whatever A
    just did. A global-history predictor sees A's outcome in the history
    register when predicting B and can predict B perfectly; a per-address
    predictor sees only B's own (i.i.d.-looking) history.
    """
    rng = random.Random(seed)
    builder = TraceBuilder(name=name, source="synthetic")
    for _ in range(length):
        outcome_a = rng.random() < taken_probability
        builder.conditional(pc_a, outcome_a, work=work_per_branch)
        builder.conditional(pc_b, outcome_a, work=work_per_branch)
    return builder.build()


def markov_trace(
    length: int,
    p_stay_taken: float = 0.9,
    p_stay_not_taken: float = 0.9,
    pc: int = 0x5000,
    seed: int = 0,
    name: str = "markov",
    work_per_branch: int = 4,
) -> Trace:
    """A single branch driven by a two-state Markov chain.

    ``p_stay_taken`` is P(taken | previous taken); ``p_stay_not_taken``
    is P(not taken | previous not taken). High stay probabilities make
    the stream bursty, rewarding hysteresis (A2 over Last-Time).
    """
    rng = random.Random(seed)
    builder = TraceBuilder(name=name, source="synthetic")
    state = True
    for _ in range(length):
        stay = p_stay_taken if state else p_stay_not_taken
        if rng.random() >= stay:
            state = not state
        builder.conditional(pc, state, work=work_per_branch)
    return builder.build()


OutcomeSource = Callable[[int], bool]


def interleaved(
    sources: Sequence[OutcomeSource],
    length: int,
    base_pc: int = 0x6000,
    pc_stride: int = 0x10,
    name: str = "interleaved",
    work_per_branch: int = 4,
) -> Trace:
    """Round-robin interleave per-site outcome sources into one trace.

    Each entry of ``sources`` is a callable mapping the per-site
    occurrence index to an outcome; site ``i`` gets pc
    ``base_pc + i * pc_stride``. Interleaving several perfectly periodic
    sources produces a stream where a *global* history register suffers
    cross-branch interference while per-address registers do not —
    exactly the GAg-vs-PAg contrast of the paper.
    """
    if not sources:
        raise ValueError("need at least one source")
    builder = TraceBuilder(name=name, source="synthetic")
    counts = [0] * len(sources)
    for step in range(length):
        site = step % len(sources)
        outcome = bool(sources[site](counts[site]))
        counts[site] += 1
        builder.conditional(base_pc + site * pc_stride, outcome, work=work_per_branch)
    return builder.build()


def alternating_source() -> OutcomeSource:
    """Outcome source: T, NT, T, NT, ..."""
    return lambda i: i % 2 == 0

def loop_source(trip_count: int) -> OutcomeSource:
    """Outcome source that behaves like a loop branch of ``trip_count``."""
    if trip_count < 1:
        raise ValueError("trip_count must be >= 1")
    return lambda i: (i % trip_count) != trip_count - 1


def pattern_source(pattern: Sequence[bool]) -> OutcomeSource:
    """Outcome source repeating an explicit pattern."""
    if not pattern:
        raise ValueError("pattern must be non-empty")
    materialized = [bool(b) for b in pattern]
    return lambda i: materialized[i % len(materialized)]


# ----------------------------------------------------------------------
# Indefinite record streams (the out-of-core twins of the builders)
# ----------------------------------------------------------------------

_COND = int(BranchClass.CONDITIONAL)


def loop_records(
    trip_count: int, pc: int = 0x1000, work_per_branch: int = 4
) -> Iterator[RecordTuple]:
    """Endless :func:`loop_trace` record stream: taken ``trip_count - 1``
    times, not taken once, forever."""
    if trip_count < 1:
        raise ValueError("trip_count must be >= 1")
    instret = 0
    occurrence = 0
    while True:
        taken = (occurrence % trip_count) != trip_count - 1
        occurrence += 1
        instret += work_per_branch + 1
        yield (pc, taken, _COND, 0, instret, False)


def periodic_records(
    pattern: Sequence[bool], pc: int = 0x2000, work_per_branch: int = 4
) -> Iterator[RecordTuple]:
    """Endless :func:`periodic_trace` record stream repeating ``pattern``."""
    if not pattern:
        raise ValueError("pattern must be non-empty")
    materialized = [bool(b) for b in pattern]
    instret = 0
    occurrence = 0
    while True:
        taken = materialized[occurrence % len(materialized)]
        occurrence += 1
        instret += work_per_branch + 1
        yield (pc, taken, _COND, 0, instret, False)


def biased_records(
    taken_probability: float,
    pc: int = 0x3000,
    seed: int = 0,
    work_per_branch: int = 4,
) -> Iterator[RecordTuple]:
    """Endless :func:`biased_trace` record stream (same seed, same
    outcomes: the first ``n`` records match ``biased_trace(n, p)``)."""
    if not 0.0 <= taken_probability <= 1.0:
        raise ValueError("taken_probability must be within [0, 1]")
    rng = random.Random(seed)
    instret = 0
    while True:
        instret += work_per_branch + 1
        yield (pc, rng.random() < taken_probability, _COND, 0, instret, False)


def markov_records(
    p_stay_taken: float = 0.9,
    p_stay_not_taken: float = 0.9,
    pc: int = 0x5000,
    seed: int = 0,
    work_per_branch: int = 4,
) -> Iterator[RecordTuple]:
    """Endless :func:`markov_trace` record stream (same seed, same chain)."""
    rng = random.Random(seed)
    state = True
    instret = 0
    while True:
        stay = p_stay_taken if state else p_stay_not_taken
        if rng.random() >= stay:
            state = not state
        instret += work_per_branch + 1
        yield (pc, state, _COND, 0, instret, False)


def concat(traces: Iterable[Trace], name: str = "concat") -> Trace:
    """Concatenate traces into one, recomputing ``instret`` offsets."""
    builder = TraceBuilder(name=name, source="synthetic")
    for trace in traces:
        previous_instret = 0
        for pc, taken, cls, target, instret, trap in trace.iter_tuples():
            gap = max(instret - previous_instret - 1, 0)
            previous_instret = instret
            if trap:
                builder.trap()
            builder.branch(pc, taken, BranchClass(cls), target=target, work=gap)
    return builder.build()
