"""Trace transformations.

Utilities for slicing and reshaping traces — the operations a
measurement methodology needs around the raw streams: windowing (skip
initialisation, take a sample), filtering to a branch subset, splitting
by phase, and merging program fragments.

All transforms return new :class:`~repro.trace.events.Trace` objects;
``instret`` columns are preserved verbatim for windowed views (so the
context-switch clock stays meaningful relative to the original run)
and recomputed for merges.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Set

from .events import BranchClass, Trace, TraceBuilder


def window(trace: Trace, start: int, count: int) -> Trace:
    """Records ``start .. start+count`` (clamped), instret preserved."""
    if start < 0 or count < 0:
        raise ValueError("start and count must be non-negative")
    indices = range(min(start, len(trace)), min(start + count, len(trace)))
    return trace.select(list(indices))


def skip_warmup(trace: Trace, conditional_branches: int) -> Trace:
    """Drop the prefix containing the first N conditional branches.

    Useful for steady-state measurements: the paper measures from cold
    start, but sensitivity studies want warm caches.
    """
    if conditional_branches < 0:
        raise ValueError("conditional_branches must be non-negative")
    seen = 0
    cut = 0
    for index, (_pc, _taken, cls, _target, _instret, _trap) in enumerate(trace.iter_tuples()):
        if cls == BranchClass.CONDITIONAL:
            seen += 1
            if seen > conditional_branches:
                cut = index
                break
    else:
        cut = len(trace)
    return trace.select(list(range(cut, len(trace))))


def filter_sites(trace: Trace, sites: Iterable[int], keep: bool = True) -> Trace:
    """Keep (or drop) the conditional branches of the given static sites.

    Non-conditional records are always kept: they carry the instruction
    clock and context-switch markers.
    """
    site_set: Set[int] = set(sites)
    indices: List[int] = []
    for index, (pc, _taken, cls, _target, _instret, _trap) in enumerate(trace.iter_tuples()):
        if cls != BranchClass.CONDITIONAL:
            indices.append(index)
            continue
        if (pc in site_set) == keep:
            indices.append(index)
    return trace.select(indices)


def split_phases(trace: Trace, phases: int) -> List[Trace]:
    """Cut the trace into ``phases`` equal consecutive pieces."""
    if phases < 1:
        raise ValueError("phases must be >= 1")
    size = max(len(trace) // phases, 1)
    pieces: List[Trace] = []
    for start in range(0, len(trace), size):
        pieces.append(trace.select(list(range(start, min(start + size, len(trace))))))
        if len(pieces) == phases:
            # Fold any remainder into the final phase.
            remainder = list(range(start + size, len(trace)))
            if remainder:
                pieces[-1] = trace.select(
                    list(range(start, len(trace)))
                )
            break
    return pieces


def merge(traces: Sequence[Trace], name: str = "merged") -> Trace:
    """Concatenate traces end-to-end, rebasing the instruction clock."""
    builder = TraceBuilder(name=name, source="transform")
    for piece in traces:
        previous = 0
        for pc, taken, cls, target, instret, trap in piece.iter_tuples():
            gap = max(instret - previous - 1, 0)
            previous = instret
            if trap:
                builder.trap()
            builder.branch(pc, taken, BranchClass(cls), target=target, work=gap)
    return builder.build()


def subsample_sites(
    trace: Trace,
    predicate: Callable[[int], bool],
) -> Trace:
    """Keep conditional branches whose pc satisfies ``predicate``.

    A generalisation of :func:`filter_sites` for programmatic slicing,
    e.g. ``subsample_sites(trace, lambda pc: pc % 2 == 0)`` to study
    set-interference.
    """
    indices: List[int] = []
    for index, (pc, _taken, cls, _target, _instret, _trap) in enumerate(trace.iter_tuples()):
        if cls != BranchClass.CONDITIONAL or predicate(pc):
            indices.append(index)
    return trace.select(indices)
