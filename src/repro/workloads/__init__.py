"""SPEC-analog workloads: nine instrumented benchmarks (see DESIGN.md)."""

from .base import BranchProbe, DatasetSpec, Workload, stable_site_id
from .doduc import DoducWorkload
from .eqntott import EqntottWorkload
from .espresso import EspressoWorkload
from .fpppp import FppppWorkload
from .gcc_like import GccWorkload
from .li import LiWorkload
from .matrix300 import Matrix300Workload
from .spice import SpiceWorkload
from .suite import (
    BENCHMARK_ORDER,
    PAPER_TABLE1,
    PAPER_TABLE2,
    SuiteConfig,
    all_workloads,
    build_cases,
    get_workload,
    table1_static_branch_counts,
    table2_datasets,
)
from .tomcatv import TomcatvWorkload

__all__ = [
    "BENCHMARK_ORDER",
    "BranchProbe",
    "DatasetSpec",
    "DoducWorkload",
    "EqntottWorkload",
    "EspressoWorkload",
    "FppppWorkload",
    "GccWorkload",
    "LiWorkload",
    "Matrix300Workload",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "SpiceWorkload",
    "SuiteConfig",
    "TomcatvWorkload",
    "Workload",
    "all_workloads",
    "build_cases",
    "get_workload",
    "stable_site_id",
    "table1_static_branch_counts",
    "table2_datasets",
]
