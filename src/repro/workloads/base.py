"""Workload instrumentation layer.

The paper generated traces by running SPEC89 binaries through a
Motorola 88100 instruction-level simulator. Our SPEC-analog workloads
are real algorithms written in Python and *instrumented*: every
conditional decision flows through a :class:`BranchProbe`, which
assigns the decision a stable static site id (a synthetic "pc") and
appends a record to the trace.

Site ids must be stable across datasets and runs — profiling trains on
one dataset and predicts on another, so the same source-level branch
must map to the same pc in both traces. Ids therefore derive from a
hash of ``workload_name + label`` rather than from execution order.

The probe also fabricates a code-layout *target* for each branch so the
BTFN static scheme has something to look at: sites declared
``backward=True`` (loop back-edges) get a target below their pc,
everything else a target above. Loop helpers declare themselves
backward automatically, matching how compilers lay out loops.
"""

from __future__ import annotations

import abc
import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Set

from ..trace.events import BranchClass, Trace, TraceBuilder

_PC_SPACE_BITS = 28
_PC_ALIGN = 4
_BRANCH_SPAN = 64  # synthetic distance between a branch and its target


def stable_site_id(namespace: str, label: str, salt: int = 0) -> int:
    """A deterministic, order-independent pc for (namespace, label).

    28-bit, word-aligned, offset away from 0 so pc 0 never appears
    (0 is the "unknown target" sentinel in :class:`BranchRecord`).
    """
    digest = hashlib.sha256(f"{namespace}\x00{label}\x00{salt}".encode("utf-8")).digest()
    raw = int.from_bytes(digest[:8], "little")
    pc = (raw % (1 << _PC_SPACE_BITS)) & ~(_PC_ALIGN - 1)
    return pc + 0x1000


class BranchProbe:
    """Instrumentation handle threaded through a workload's code.

    Wraps a :class:`TraceBuilder` with stable site-id allocation and
    branch-shaped conveniences. The instrumented code keeps its own
    semantics: ``probe.cond(...)`` returns the outcome it was given.
    """

    def __init__(self, namespace: str, builder: TraceBuilder) -> None:
        self.namespace = namespace
        self.builder = builder
        self._sites: Dict[str, int] = {}
        self._backward: Set[str] = set()
        self._used_pcs: Set[int] = set()

    # ------------------------------------------------------------------
    # Site management
    # ------------------------------------------------------------------
    def site(self, label: str) -> int:
        """The stable pc for ``label`` (allocating on first use)."""
        pc = self._sites.get(label)
        if pc is None:
            salt = 0
            pc = stable_site_id(self.namespace, label, salt)
            while pc in self._used_pcs:
                salt += 1
                pc = stable_site_id(self.namespace, label, salt)
            self._sites[label] = pc
            self._used_pcs.add(pc)
        return pc

    @property
    def num_sites(self) -> int:
        return len(self._sites)

    # ------------------------------------------------------------------
    # Branch-shaped events
    # ------------------------------------------------------------------
    def cond(self, label: str, taken: bool, work: int = 3, backward: bool = False) -> bool:
        """Record a conditional branch and return its outcome.

        Args:
            label: static-site label, unique per source-level branch.
            taken: the decision the algorithm actually made.
            work: non-branch instructions charged before this branch.
            backward: lay the branch out as a loop back-edge (target
                below pc) for the BTFN scheme.
        """
        pc = self.site(label)
        if backward:
            self._backward.add(label)
        target = pc - _BRANCH_SPAN if label in self._backward else pc + _BRANCH_SPAN
        self.builder.branch(pc, taken, BranchClass.CONDITIONAL, target=target, work=work)
        return taken

    def loop(self, label: str, count: int, work: int = 3) -> Iterator[int]:
        """Iterate ``range(count)`` emitting loop-branch records.

        Emits a *taken* backward branch per completed iteration and one
        final *not-taken* branch at loop exit — the classic
        test-at-bottom loop shape. Zero-trip loops emit a single
        not-taken branch (the guard fails immediately).
        """
        for index in range(count):
            yield index
            self.cond(label, True, work=work, backward=True)
        self.cond(label, False, work=work, backward=True)

    def while_(self, label: str, condition: bool, work: int = 3) -> bool:
        """A loop-guard conditional laid out backward; returns ``condition``."""
        return self.cond(label, condition, work=work, backward=True)

    def call(self, label: str, work: int = 2) -> None:
        """Record a subroutine call (unconditional, always taken)."""
        pc = self.site(label)
        self.builder.call(pc, target=pc + _BRANCH_SPAN, work=work)

    def ret(self, label: str, work: int = 1) -> None:
        """Record a subroutine return."""
        pc = self.site(label)
        self.builder.ret(pc, work=work)

    def jump(self, label: str, work: int = 1) -> None:
        """Record an unconditional jump (e.g. a goto / loop preheader)."""
        pc = self.site(label)
        self.builder.unconditional(pc, target=pc + _BRANCH_SPAN, work=work)

    def trap(self) -> None:
        """Record a trap (system call); a context-switch opportunity."""
        self.builder.trap()

    def work(self, count: int) -> None:
        """Charge ``count`` straight-line non-branch instructions."""
        self.builder.instructions(count)


@dataclass(frozen=True)
class DatasetSpec:
    """One named input of a workload (Table 2 rows)."""

    name: str
    seed: int
    size: int
    """A workload-interpreted size parameter (scaled by ``scale``)."""


class Workload(abc.ABC):
    """A SPEC-analog benchmark: generates branch traces from datasets.

    Subclasses define :attr:`name`, :attr:`category`, their Table 2
    datasets, and :meth:`run`, which executes the instrumented
    algorithm against a dataset.
    """

    #: Benchmark name matching the paper's tables.
    name: str = "workload"
    #: "int" or "fp" — decides which geometric mean the result joins.
    category: str = "int"
    #: Table 2 training dataset; None reproduces the paper's "NA".
    training_dataset: Optional[DatasetSpec] = None
    #: Table 2 testing dataset.
    testing_dataset: DatasetSpec = DatasetSpec("builtin", seed=0, size=1)
    #: Extra named inputs beyond Table 2, for sensitivity studies.
    alternate_datasets: tuple = ()

    @abc.abstractmethod
    def run(self, probe: BranchProbe, rng: random.Random, dataset: DatasetSpec, scale: int) -> None:
        """Execute the workload, emitting branches through ``probe``."""

    def generate(self, dataset: Optional[str] = None, scale: int = 1, seed_offset: int = 0) -> Trace:
        """Produce the branch trace for one dataset.

        Args:
            dataset: dataset name; defaults to the testing dataset.
                ``"training"``/``"testing"`` select by role.
            scale: linear work multiplier (1 = the default suite size).
            seed_offset: perturb the dataset seed (for replication
                studies); 0 reproduces the canonical trace.
        """
        spec = self._resolve_dataset(dataset)
        if scale < 1:
            raise ValueError("scale must be >= 1")
        builder = TraceBuilder(name=self.name, dataset=spec.name, source="workload")
        probe = BranchProbe(self.name, builder)
        rng = random.Random((spec.seed + seed_offset) * 1_000_003 + 17)
        self.run(probe, rng, spec, scale)
        return builder.build()

    def _resolve_dataset(self, dataset: Optional[str]) -> DatasetSpec:
        if dataset is None or dataset == "testing" or dataset == self.testing_dataset.name:
            return self.testing_dataset
        if dataset == "training" or (
            self.training_dataset is not None and dataset == self.training_dataset.name
        ):
            if self.training_dataset is None:
                raise ValueError(f"{self.name} has no training dataset (Table 2: NA)")
            return self.training_dataset
        for spec in self.alternate_datasets:
            if dataset == spec.name:
                return spec
        raise ValueError(
            f"{self.name} has no dataset named {dataset!r}; "
            f"known: {[s.name for s in self.datasets()]}"
        )

    def datasets(self) -> "list[DatasetSpec]":
        """Every named input this workload knows."""
        specs = []
        if self.training_dataset is not None:
            specs.append(self.training_dataset)
        specs.append(self.testing_dataset)
        specs.extend(self.alternate_datasets)
        return specs

    @property
    def has_training(self) -> bool:
        return self.training_dataset is not None

    def __repr__(self) -> str:
        return f"<Workload {self.name} ({self.category})>"
