"""doduc analog — Monte Carlo nuclear reactor simulation (SPEC89 doduc).

Doduc is a Monte Carlo time-evolution of a nuclear reactor: despite
being a floating-point code its branch behaviour is notoriously
irregular (the paper singles it out, with spice2g6 and the integer
codes, as where "a branch predictor's mettle is tested"). Table 2:
train on ``tiny doducin``, test on ``doducin``.

The analog transports particles through concentric reactor zones:
per step it samples an interaction (scatter / absorb / fission /
escape) from zone- and energy-dependent probabilities, moves particles
between zones and energy groups, and runs a per-time-step control loop
with tally reductions and convergence checks. The branch stream is a
mix of biased-but-random interaction branches and short data-dependent
loops — hard for every predictor, exactly doduc's role in the paper.
"""

from __future__ import annotations

import random
from typing import List

from .base import BranchProbe, DatasetSpec, Workload

_NUM_ZONES = 5
_NUM_GROUPS = 3


class DoducWorkload(Workload):
    """Zone-based Monte Carlo particle transport with time stepping."""

    name = "doduc"
    category = "fp"
    training_dataset = DatasetSpec("tiny doducin", seed=11, size=160)
    testing_dataset = DatasetSpec("doducin", seed=67, size=420)
    alternate_datasets = (DatasetSpec("doducin.big", seed=91, size=700),)

    def run(self, probe: BranchProbe, rng: random.Random, dataset: DatasetSpec, scale: int) -> None:
        particles_per_step = dataset.size * scale
        time_steps = 12
        # Zone-dependent interaction probabilities. Inner zones are
        # strongly scattering, the periphery absorbing: a particle's
        # recent branch history encodes its zone, which is exactly the
        # correlation a two-level predictor can exploit and a
        # per-branch counter cannot.
        scatter = [0.98, 0.96, 0.94, 0.60, 0.15][:_NUM_ZONES]
        absorb = [0.01, 0.02, 0.04, 0.35, 0.75][:_NUM_ZONES]
        power_history: List[float] = []
        for _step in probe.loop("time.steps", time_steps, work=30):
            tallies = [0.0] * _NUM_ZONES
            fissions = 0
            for _p in probe.loop("time.particles", particles_per_step, work=8):
                fissions += self._transport(probe, rng, scatter, absorb, tallies)
                # Energy deposition spread over the group structure — a
                # short regular loop per particle (the "physics" half of
                # doduc that is perfectly predictable).
                for _g in probe.loop("deposit.groups", _NUM_GROUPS * 2, work=14):
                    pass
            power = self._reduce_tallies(probe, tallies, fissions)
            power_history.append(power)
            # Reactivity control: adjust when power drifts — a noisy,
            # weakly-autocorrelated branch.
            drifting = len(power_history) >= 2 and abs(
                power_history[-1] - power_history[-2]
            ) > 0.08 * max(power_history[-1], 1e-9)
            if probe.cond("time.adjust_rods", drifting, work=6):
                scatter = [s * 0.995 for s in scatter]
            if probe.cond(
                "time.converged",
                self._converged(probe, power_history),
                work=4,
            ):
                break
        probe.trap()  # checkpoint dump

    def _transport(
        self,
        probe: BranchProbe,
        rng: random.Random,
        scatter: List[float],
        absorb: List[float],
        tallies: List[float],
    ) -> int:
        """Walk one particle until absorption, fission or escape.

        Returns the number of fission events it caused.
        """
        probe.call("walk.enter")
        zone = 0
        group = rng.randrange(_NUM_GROUPS)
        fissions = 0
        alive = True
        while probe.while_("walk.alive", alive, work=22):
            tallies[zone] += 1.0 / (1 + group)
            roll = rng.random()
            if probe.cond("walk.scatters", roll < scatter[zone], work=5):
                # Scattering: maybe lose energy, maybe change zone.
                if probe.cond("walk.downscatter", rng.random() < 0.15 and group < _NUM_GROUPS - 1, work=4):
                    group += 1
                if probe.cond("walk.outward", rng.random() < 0.85, work=4):
                    zone += 1
                    if probe.cond("walk.escaped", zone >= _NUM_ZONES, work=3):
                        alive = False
                else:
                    if probe.cond("walk.at_core", zone == 0, work=3):
                        pass  # reflected at the core
                    else:
                        zone -= 1
            elif probe.cond("walk.absorbed", roll < scatter[zone] + absorb[zone], work=5):
                alive = False
            else:
                # Fission: particle dies, daughters tallied; thermal
                # group fissions more — a group-correlated branch.
                if probe.cond("walk.thermal_fission", group == _NUM_GROUPS - 1, work=4):
                    fissions += 2
                else:
                    fissions += 1
                alive = False
        probe.ret("walk.leave")
        return fissions

    def _reduce_tallies(self, probe: BranchProbe, tallies: List[float], fissions: int) -> float:
        total = 0.0
        peak = 0.0
        for z in probe.loop("tally.zones", _NUM_ZONES, work=6):
            total += tallies[z]
            if probe.cond("tally.newpeak", tallies[z] > peak, work=3):
                peak = tallies[z]
        return (total + 1.7 * fissions) / max(peak, 1.0)

    def _converged(self, probe: BranchProbe, history: List[float]) -> bool:
        """Converged when the last few powers agree within 0.1 %."""
        if probe.cond("conv.too_short", len(history) < 4, work=3):
            return False
        reference = history[-1]
        index = 2
        while probe.while_("conv.scan", index <= 4, work=4):
            if probe.cond(
                "conv.off_band",
                abs(history[-index] - reference) > 1e-3 * max(abs(reference), 1e-9),
                work=3,
            ):
                return False
            index += 1
        return True
