"""eqntott analog — boolean equation to truth-table conversion (SPEC89).

Eqntott converts boolean equations into truth tables; its execution time
is famously dominated by ``cmppt``, the qsort comparator that compares
two truth-table rows bit by bit — short data-dependent loops whose
outcomes repeat in patterns, which is precisely where two-level
prediction shines over per-branch counters. Table 2 lists only a
testing input (``int_pri_3.eqn``), so profiled schemes skip this
benchmark, as in the paper's Figure 11.

The analog parses nothing (the interesting behaviour is downstream):
it *builds* random equation DAGs, evaluates them over every input
assignment (recursive node-type dispatch), then sorts the resulting
rows with an instrumented merge sort whose comparator walks the rows'
bit-vectors — the cmppt analog.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from .base import BranchProbe, DatasetSpec, Workload

# Expression node kinds.
_VAR, _NOT, _AND, _OR, _XOR = range(5)
_KIND_NAMES = {_VAR: "var", _NOT: "not", _AND: "and", _OR: "or", _XOR: "xor"}

Node = Tuple[int, int, int]
"""(kind, left, right) — children index into the node list; for _VAR,
``left`` is the variable index."""


def _random_expression(rng: random.Random, num_vars: int, size: int) -> List[Node]:
    """A random boolean DAG in topological order (children first)."""
    nodes: List[Node] = [(_VAR, v, -1) for v in range(num_vars)]
    for _ in range(size):
        kind = rng.choice((_NOT, _AND, _OR, _XOR, _AND, _OR))
        left = rng.randrange(len(nodes))
        right = rng.randrange(len(nodes))
        nodes.append((kind, left, right))
    return nodes


def _evaluate(probe: BranchProbe, nodes: Sequence[Node], assignment: int) -> bool:
    """Evaluate the DAG root for one input assignment.

    The per-node kind dispatch is the instrumented control flow: a chain
    of kind tests like the original's switch over PT node types, plus
    the short-circuit guards of AND/OR evaluation.
    """
    values: List[bool] = []
    for kind, left, right in nodes:
        if probe.cond("eval.is_var", kind == _VAR, work=3):
            value = bool((assignment >> left) & 1)
        elif probe.cond("eval.is_not", kind == _NOT, work=3):
            value = not values[left]
        elif probe.cond("eval.is_and", kind == _AND, work=3):
            # Short-circuit: right operand only inspected when the left
            # is true — a data-correlated branch.
            if probe.cond("eval.and_short", values[left], work=2):
                value = values[right]
            else:
                value = False
        elif probe.cond("eval.is_or", kind == _OR, work=3):
            if probe.cond("eval.or_short", values[left], work=2):
                value = True
            else:
                value = values[right]
        else:
            value = values[left] ^ values[right]
        values.append(value)
    return values[-1]


def _pack_row(assignment: int, output: bool, num_vars: int) -> Tuple[int, ...]:
    """A truth-table row as words: output bit, then input nibbles
    most-significant first.

    Because assignments are enumerated in ascending order, the packed
    rows arrive *nearly sorted* — so the sort's comparison branches are
    strongly patterned rather than random, as they are for eqntott's
    real PT tables.
    """
    words = [1 if output else 0]
    start = ((num_vars + 3) // 4 - 1) * 4
    for chunk in range(start, -1, -4):
        words.append((assignment >> chunk) & 0xF)
    return tuple(words)


def _compare_rows(probe: BranchProbe, left: Sequence[int], right: Sequence[int]) -> int:
    """The cmppt analog: word-by-word row comparison.

    The continuation branch ("words equal so far, keep scanning") has
    history-dependent behaviour the paper's schemes exploit.
    """
    probe.call("cmppt.enter")
    index = 0
    while probe.while_("cmppt.scan", index < len(left), work=4):
        if probe.cond("cmppt.differs", left[index] != right[index], work=3):
            probe.ret("cmppt.leave")
            return -1 if left[index] < right[index] else 1
        index += 1
    probe.ret("cmppt.leave")
    return 0


def _merge_sort(probe: BranchProbe, rows: List[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
    """Instrumented bottom-up merge sort over truth-table rows."""
    width = 1
    items = list(rows)
    buffer: List[Tuple[int, ...]] = [rows[0]] * len(rows) if rows else []
    while probe.while_("sort.widths", width < len(items), work=5):
        for start in probe.loop("sort.runs", (len(items) + 2 * width - 1) // (2 * width), work=6):
            lo = start * 2 * width
            mid = min(lo + width, len(items))
            hi = min(lo + 2 * width, len(items))
            i, j, out = lo, mid, lo
            while probe.while_("merge.both", i < mid and j < hi, work=5):
                if probe.cond(
                    "merge.pick_left",
                    _compare_rows(probe, items[i], items[j]) <= 0,
                    work=3,
                ):
                    buffer[out] = items[i]
                    i += 1
                else:
                    buffer[out] = items[j]
                    j += 1
                out += 1
            while probe.while_("merge.drain_left", i < mid, work=3):
                buffer[out] = items[i]
                i += 1
                out += 1
            while probe.while_("merge.drain_right", j < hi, work=3):
                buffer[out] = items[j]
                j += 1
                out += 1
            items[lo:hi] = buffer[lo:hi]
        width *= 2
    return items


class EqntottWorkload(Workload):
    """Truth-table construction + cmppt-style sorting."""

    name = "eqntott"
    category = "int"
    training_dataset = None  # Table 2: NA
    testing_dataset = DatasetSpec("int_pri_3.eqn", seed=1733, size=8)
    alternate_datasets = (
        DatasetSpec("int_pri_1.eqn", seed=401, size=7),
        DatasetSpec("fixed_mul.eqn", seed=829, size=9),
    )

    def run(self, probe: BranchProbe, rng: random.Random, dataset: DatasetSpec, scale: int) -> None:
        num_vars = dataset.size
        num_equations = 5 * scale
        for eq in probe.loop("main.equations", num_equations, work=20):
            probe.call("main.build_expr")
            nodes = _random_expression(rng, num_vars, size=10 + (eq % 4) * 3)
            probe.work(12 * len(nodes))
            probe.ret("main.build_expr.ret")

            rows: List[Tuple[int, ...]] = []
            for assignment in probe.loop("table.assignments", 1 << num_vars, work=6):
                output = _evaluate(probe, nodes, assignment)
                # Only ON-set rows are tabulated, like the original's PT
                # entries for true outputs.
                if probe.cond("table.onset", output, work=3):
                    rows.append(_pack_row(assignment, output, num_vars))
            probe.call("main.sort")
            ordered = _merge_sort(probe, rows)
            probe.ret("main.sort.ret")
            self._dedupe(probe, ordered)
            probe.trap()  # emit the table (write syscall)

    def _dedupe(self, probe: BranchProbe, ordered: List[Tuple[int, ...]]) -> int:
        """Post-sort duplicate elimination scan."""
        unique = 0
        for i in probe.loop("dedupe.scan", len(ordered), work=4):
            is_dup = i > 0 and ordered[i] == ordered[i - 1]
            if probe.cond("dedupe.duplicate", is_dup, work=3):
                continue
            unique += 1
        return unique
