"""espresso analog — two-level logic minimisation (SPEC89 espresso).

Espresso minimises PLA covers through EXPAND / IRREDUNDANT / REDUCE
sweeps; its control flow is cube-against-cube containment and distance
tests inside data-dependent loops — irregular integer branching, one of
the paper's "interesting" benchmarks. Table 2: train on ``cps``, test
on ``bca``.

The analog represents cubes in the classic two-bits-per-variable
positional notation and runs genuine (if simplified) expand, reduce and
irredundant passes over a randomly generated PLA whose shape (inputs,
cube count, density) is the dataset.
"""

from __future__ import annotations

import random
from typing import List

from .base import BranchProbe, DatasetSpec, Workload

Cube = List[int]
"""Per-variable values: 0b01 = literal 0, 0b10 = literal 1, 0b11 = don't care."""

_ZERO, _ONE, _DASH = 0b01, 0b10, 0b11


def _random_cover(
    rng: random.Random, num_inputs: int, num_cubes: int, care_density: float
) -> List[Cube]:
    """Cubes clustered around a few prototypes.

    Real PLAs are highly structured — product terms share most literals
    with their neighbours. Clustering makes the cube-against-cube scan
    loops see recurring outcome patterns (learnable history) instead of
    white noise, while the per-cube mutations keep the passes honest.
    """
    prototypes: List[Cube] = []
    for _ in range(max(num_cubes // 8, 1)):
        prototype = []
        for _var in range(num_inputs):
            if rng.random() < care_density:
                prototype.append(_ONE if rng.random() < 0.5 else _ZERO)
            else:
                prototype.append(_DASH)
        prototypes.append(prototype)
    cover = []
    for index in range(num_cubes):
        cube = list(prototypes[index % len(prototypes)])
        for _mutation in range(2):
            var = rng.randrange(num_inputs)
            cube[var] = rng.choice((_ZERO, _ONE, _DASH))
        cover.append(cube)
    return cover


def _intersects(probe: BranchProbe, a: Cube, b: Cube, site: str) -> bool:
    """True when cubes overlap: no variable with disjoint literals.

    The early-exit scan is espresso's ``cdist0`` — the hot loop.
    """
    index = 0
    while probe.while_(f"{site}.scan", index < len(a), work=4):
        if probe.cond(f"{site}.disjoint", (a[index] & b[index]) == 0, work=3):
            return False
        index += 1
    return True


def _contains(probe: BranchProbe, outer: Cube, inner: Cube, site: str) -> bool:
    """True when ``outer`` covers ``inner`` (bitwise superset per variable)."""
    probe.call(f"{site}.enter")
    index = 0
    while probe.while_(f"{site}.scan", index < len(outer), work=4):
        if probe.cond(f"{site}.miss", (outer[index] & inner[index]) != inner[index], work=3):
            probe.ret(f"{site}.leave")
            return False
        index += 1
    probe.ret(f"{site}.leave")
    return True


class EspressoWorkload(Workload):
    """EXPAND / IRREDUNDANT / REDUCE sweeps over a random PLA."""

    name = "espresso"
    category = "int"
    training_dataset = DatasetSpec("cps", seed=501, size=13)
    testing_dataset = DatasetSpec("bca", seed=907, size=14)
    alternate_datasets = (DatasetSpec("ti", seed=311, size=12),)

    def run(self, probe: BranchProbe, rng: random.Random, dataset: DatasetSpec, scale: int) -> None:
        num_inputs = dataset.size
        num_cubes = 44 * scale
        on_set = _random_cover(rng, num_inputs, num_cubes, care_density=0.55)
        off_set = _random_cover(rng, num_inputs, num_cubes // 2, care_density=0.70)
        cost_before = self._cover_cost(probe, on_set)
        for _sweep in probe.loop("main.sweeps", 3, work=15):
            probe.call("main.expand")
            on_set = self._expand(probe, on_set, off_set)
            probe.ret("main.expand.ret")
            probe.call("main.irredundant")
            on_set = self._irredundant(probe, on_set)
            probe.ret("main.irredundant.ret")
            probe.call("main.reduce")
            self._reduce(probe, rng, on_set, off_set)
            probe.ret("main.reduce.ret")
            cost_after = self._cover_cost(probe, on_set)
            if probe.cond("main.no_gain", cost_after >= cost_before, work=4):
                pass  # espresso loops anyway for a fixed sweep budget here
            cost_before = cost_after
        probe.trap()  # write the minimised PLA

    # ------------------------------------------------------------------
    # Passes
    # ------------------------------------------------------------------
    def _expand(
        self, probe: BranchProbe, on_set: List[Cube], off_set: List[Cube]
    ) -> List[Cube]:
        """Raise each literal to don't-care when still off-set-free."""
        expanded: List[Cube] = []
        for ci in probe.loop("expand.cubes", len(on_set), work=6):
            cube = list(on_set[ci])
            for var in probe.loop("expand.vars", len(cube), work=5):
                if probe.cond("expand.already_free", cube[var] == _DASH, work=3):
                    continue
                saved = cube[var]
                cube[var] = _DASH
                blocked = False
                for oi in probe.loop("expand.offscan", len(off_set), work=4):
                    if probe.cond(
                        "expand.hits_off",
                        _intersects(probe, cube, off_set[oi], "expand.dist"),
                        work=3,
                    ):
                        blocked = True
                        break
                if probe.cond("expand.blocked", blocked, work=3):
                    cube[var] = saved
            expanded.append(cube)
        return expanded

    def _irredundant(self, probe: BranchProbe, cover: List[Cube]) -> List[Cube]:
        """Drop cubes contained in another cube of the cover."""
        kept: List[Cube] = []
        for ci in probe.loop("irred.cubes", len(cover), work=5):
            redundant = False
            for cj in probe.loop("irred.others", len(cover), work=4):
                if probe.cond("irred.self", ci == cj, work=2):
                    continue
                if probe.cond(
                    "irred.covered",
                    _contains(probe, cover[cj], cover[ci], "irred.cont"),
                    work=3,
                ):
                    redundant = True
                    break
            if probe.cond("irred.keep", not redundant, work=3):
                kept.append(cover[ci])
        return kept

    def _reduce(
        self,
        probe: BranchProbe,
        rng: random.Random,
        cover: List[Cube],
        off_set: List[Cube],
    ) -> None:
        """Shrink a sample of cubes back toward minimal literals."""
        for ci in probe.loop("reduce.cubes", len(cover), work=5):
            cube = cover[ci]
            # Espresso reduces against the rest of the cover; sampling
            # keeps the pass cheap while preserving branch character.
            if probe.cond("reduce.sampled", rng.random() < 0.5, work=3):
                continue
            for var in probe.loop("reduce.vars", len(cube), work=5):
                if probe.cond("reduce.not_free", cube[var] != _DASH, work=3):
                    continue
                trial = _ONE if rng.random() < 0.5 else _ZERO
                cube[var] = trial
                still_needed = False
                for oi in probe.loop("reduce.offscan", min(len(off_set), 8), work=4):
                    if probe.cond(
                        "reduce.off_near",
                        _intersects(probe, cube, off_set[oi], "reduce.dist"),
                        work=3,
                    ):
                        still_needed = True
                        break
                if probe.cond("reduce.revert", not still_needed, work=3):
                    cube[var] = _DASH

    def _cover_cost(self, probe: BranchProbe, cover: List[Cube]) -> int:
        """Literal count — the quantity espresso minimises."""
        cost = 0
        for ci in probe.loop("cost.cubes", len(cover), work=4):
            for var in probe.loop("cost.vars", len(cover[ci]), work=3):
                if probe.cond("cost.literal", cover[ci][var] != _DASH, work=2):
                    cost += 1
        return cost
