"""fpppp analog — two-electron integral evaluation (SPEC89 fpppp).

Fpppp computes two-electron repulsion integrals over Gaussian basis
functions in enormous straight-line basic blocks; branches are a tiny
fraction of the dynamic instruction stream (the paper measures ~5 %
branch instructions for FP codes, with fpppp the extreme case) and the
few branches that exist are long counted loops plus a screening test
that is almost always decided the same way — every predictor scores
very high on fpppp, and the paper treats it as an "easy" benchmark.
Table 2 lists its input (``natoms``) with no training set.

The analog enumerates the triangular shell-pair list, then sweeps one
long flat loop over all pair-of-pairs quadruples (mirroring fpppp's
linearised integral batches); each quadruple charges a large slab of
straight-line work, evaluates a strongly-biased magnitude screen, and
contracts over primitive Gaussians in a long counted loop.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from .base import BranchProbe, DatasetSpec, Workload

_PRIMITIVES = 20


class FppppWorkload(Workload):
    """Flat shell-quadruple integral sweep with screening."""

    name = "fpppp"
    category = "fp"
    training_dataset = None  # Table 2: NA
    testing_dataset = DatasetSpec("natoms", seed=4242, size=11)

    def run(self, probe: BranchProbe, rng: random.Random, dataset: DatasetSpec, scale: int) -> None:
        shells = dataset.size
        exponents = [rng.uniform(0.3, 3.0) for _ in range(shells)]
        centres = [rng.uniform(-1.5, 1.5) for _ in range(shells)]
        pairs = self._pair_list(probe, shells)
        for _pass in probe.loop("scf.iterations", 2 * scale, work=60):
            total = 0.0
            for quad_index in probe.loop("quad.flat", len(pairs) * len(pairs) // 2, work=14):
                ij = quad_index % len(pairs)
                kl = (quad_index * 7) % len(pairs)
                i, j = pairs[ij]
                k, l = pairs[kl]
                total += self._integral(probe, exponents, centres, i, j, k, l)
            probe.work(400)  # Fock-matrix update, branch-free

    def _pair_list(self, probe: BranchProbe, shells: int) -> List[Tuple[int, int]]:
        """The triangular (i <= j) shell-pair list."""
        pairs: List[Tuple[int, int]] = []
        for i in probe.loop("pairs.outer", shells, work=4):
            for j in probe.loop("pairs.inner", i + 1, work=5):
                pairs.append((i, j))
        return pairs

    def _integral(
        self,
        probe: BranchProbe,
        exponents: List[float],
        centres: List[float],
        i: int,
        j: int,
        k: int,
        l: int,
    ) -> float:
        probe.call("integral.enter")
        # Schwarz-style screening estimate; compact molecules pass the
        # overwhelming majority of quadruples, so the guard is strongly
        # biased — exactly fpppp's character.
        distance = abs(centres[i] - centres[k]) + abs(centres[j] - centres[l])
        estimate = math.exp(-0.35 * distance)
        if probe.cond("screen.negligible", estimate < 0.4, work=5):
            probe.ret("integral.leave")
            return 0.0
        value = 0.0
        # Contraction over primitive Gaussians: a long counted loop with
        # a big straight-line body.
        for p in probe.loop("contract.primitives", _PRIMITIVES, work=110):
            alpha = exponents[i] + exponents[j] + 0.1 * p
            beta = exponents[k] + exponents[l] + 0.1 * p
            value += estimate * math.exp(-alpha * beta / (alpha + beta))
        probe.ret("integral.leave")
        return value
