"""gcc analog — a miniature C-like compiler (SPEC89 gcc).

Gcc is the paper's stress benchmark: by far the largest static branch
population (6922 static conditional branches in Table 1, an order of
magnitude above the rest), irregular branch behaviour, and many traps
(which is why context switching hurts gcc most under PAg/PAp in
Figure 9).

The analog is a real multi-pass compiler for a C-like language:

1. a deterministic source generator produces translation units (the
   ``cexp.i`` / ``dbxout.i`` datasets differ in seed and shape),
2. a hand-written lexer with per-character-class and per-keyword
   dispatch,
3. a recursive-descent parser building an AST,
4. a constant folder with per-operator rules,
5. per-intrinsic type checking driven by a generated intrinsic table —
   this models the per-builtin handling code that gives the real gcc
   its huge static branch population; every intrinsic owns distinct
   branch sites, as it owns distinct code in gcc,
6. a stack-machine code generator with per-opcode emission guards, and
7. a peephole pass over emitted opcode pairs.

Traps are emitted per file read/diagnostic/object write, so the trace
carries gcc's high trap density.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .base import BranchProbe, DatasetSpec, Workload

_KEYWORDS = ("int", "if", "else", "while", "return", "var")
_NUM_INTRINSICS = 224
_INTRINSIC_ARITY = (1, 2, 2, 3)


# ----------------------------------------------------------------------
# Source generation (pre-trace: models reading the .i file from disk)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _Style:
    """Per-function idiom: real code is repetitive within a function.

    Each generated function sticks to a small palette of operators and
    intrinsics and a preferred statement shape, so the token stream —
    and hence the compiler's branch outcomes — carries the strong local
    regularity that real source exhibits.
    """

    ops: Tuple[str, ...]
    intrinsics: Tuple[int, ...]
    if_bias: float
    loop_bias: float


def _make_style(rng: random.Random) -> _Style:
    all_ops = ("+", "-", "*", "/", "<", ">", "==", "&", "|")
    ops = tuple(rng.choice(all_ops) for _ in range(3))
    intrinsics = tuple(rng.randrange(_NUM_INTRINSICS) for _ in range(5))
    return _Style(
        ops=ops,
        intrinsics=intrinsics,
        if_bias=rng.uniform(0.08, 0.25),
        loop_bias=rng.uniform(0.05, 0.20),
    )


def generate_source(rng: random.Random, functions: int, statements: int) -> str:
    """A deterministic random translation unit."""
    lines: List[str] = []
    for findex in range(functions):
        style = _make_style(rng)
        params = ", ".join(f"int p{i}" for i in range(rng.randrange(0, 4)))
        lines.append(f"int fn{findex}({params}) {{")
        lines.append(f"  var acc = {rng.randrange(0, 100)};")
        for _ in range(statements):
            lines.append("  " + _gen_statement(rng, depth=0, style=style))
        lines.append("  return acc;")
        lines.append("}")
    return "\n".join(lines)


def _gen_statement(rng: random.Random, depth: int, style: _Style) -> str:
    roll = rng.random()
    if roll < style.if_bias and depth < 2:
        return (
            f"if ({_gen_expr(rng, depth + 1, style)}) {{ acc = {_gen_expr(rng, depth + 1, style)}; }}"
            + (f" else {{ acc = {_gen_expr(rng, depth + 1, style)}; }}" if rng.random() < 0.5 else "")
        )
    if roll < style.if_bias + style.loop_bias and depth < 2:
        return (
            f"while (acc < {rng.randrange(2, 30)}) "
            f"{{ acc = acc + {rng.randrange(1, 5)}; }}"
        )
    if roll < 0.5:
        return f"var t{rng.randrange(40)} = {_gen_expr(rng, depth + 1, style)};"
    return f"acc = {_gen_expr(rng, depth + 1, style)};"


def _gen_expr(rng: random.Random, depth: int, style: _Style) -> str:
    """Expressions follow the function's idiom: most are the simple
    ``acc <op> const`` shape real code repeats endlessly, with a tail of
    deeper nests and intrinsic calls."""
    roll = rng.random()
    if depth >= 3 or roll < 0.30:
        return str(rng.randrange(0, 256))
    if roll < 0.42:
        return "acc"
    if roll < 0.72:
        # The idiomatic shape, using the function's favourite operator.
        op = style.ops[0]
        return f"(acc {op} {rng.randrange(1, 64)})"
    if roll < 0.86:
        which = style.intrinsics[rng.randrange(len(style.intrinsics))]
        arity = _INTRINSIC_ARITY[which % len(_INTRINSIC_ARITY)]
        args = ", ".join(_gen_expr(rng, depth + 1, style) for _ in range(arity))
        return f"__b{which}({args})"
    op = style.ops[rng.randrange(len(style.ops))]
    return f"({_gen_expr(rng, depth + 1, style)} {op} {_gen_expr(rng, depth + 1, style)})"


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Token:
    kind: str
    text: str


_SIMPLE_OPS = "+-*/<>&|(){};,="


def lex(probe: BranchProbe, source: str) -> List[Token]:
    """Instrumented scanner with per-class and per-operator dispatch."""
    tokens: List[Token] = []
    index = 0
    length = len(source)
    while probe.while_("lex.main", index < length, work=4):
        ch = source[index]
        if probe.cond("lex.space", ch in " \n\t", work=3):
            index += 1
            continue
        if probe.cond("lex.digit", ch.isdigit(), work=3):
            start = index
            while probe.while_("lex.digit_run", index < length and source[index].isdigit(), work=3):
                index += 1
            tokens.append(Token("num", source[start:index]))
            continue
        if probe.cond("lex.alpha", ch.isalpha() or ch == "_", work=3):
            start = index
            while probe.while_(
                "lex.ident_run",
                index < length and (source[index].isalnum() or source[index] == "_"),
                work=3,
            ):
                index += 1
            text = source[start:index]
            matched_keyword = False
            for keyword in _KEYWORDS:
                # One comparison site per keyword, emitted branch-to-skip
                # (taken = "not this keyword, try the next"), the polarity
                # a strcmp chain compiles to.
                if not probe.cond(f"lex.kw.{keyword}", text != keyword, work=4):
                    tokens.append(Token(keyword, text))
                    matched_keyword = True
                    break
            if probe.cond("lex.plain_ident", not matched_keyword, work=2):
                tokens.append(Token("ident", text))
            continue
        if probe.cond("lex.eq_pair", ch == "=" and index + 1 < length and source[index + 1] == "=", work=4):
            tokens.append(Token("==", "=="))
            index += 2
            continue
        matched = False
        for op in _SIMPLE_OPS:
            # Branch-to-skip polarity: taken = "not this operator".
            if not probe.cond(f"lex.op.{op}", ch != op, work=3):
                tokens.append(Token(op, op))
                index += 1
                matched = True
                break
        if probe.cond("lex.unknown", not matched, work=3):
            index += 1  # skip unknown byte, like gcc's error recovery
    return tokens


# ----------------------------------------------------------------------
# AST and parser
# ----------------------------------------------------------------------

@dataclass
class Node:
    kind: str
    value: object = None
    children: List["Node"] = field(default_factory=list)


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, probe: BranchProbe, tokens: Sequence[Token]) -> None:
        self.probe = probe
        self.tokens = tokens
        self.position = 0

    def peek_kind(self) -> str:
        if self.position < len(self.tokens):
            return self.tokens[self.position].kind
        return "<eof>"

    def accept(self, site: str, kind: str) -> Optional[Token]:
        matches = self.peek_kind() == kind
        if self.probe.cond(f"parse.accept.{site}", matches, work=4):
            token = self.tokens[self.position]
            self.position += 1
            return token
        return None

    def expect(self, site: str, kind: str) -> Token:
        token = self.accept(site, kind)
        if self.probe.cond(f"parse.missing.{site}", token is None, work=3):
            # Error recovery: synthesise the token, as gcc presses on.
            return Token(kind, kind)
        return token

    def parse_unit(self) -> List[Node]:
        functions: List[Node] = []
        while self.probe.while_("parse.unit_loop", self.position < len(self.tokens), work=5):
            functions.append(self.parse_function())
        return functions

    def parse_function(self) -> Node:
        self.probe.call("parse.function")
        self.expect("fn.int", "int")
        name = self.expect("fn.name", "ident")
        self.expect("fn.lparen", "(")
        params: List[str] = []
        if self.probe.cond("parse.has_params", self.peek_kind() != ")", work=4):
            while True:
                self.expect("param.int", "int")
                params.append(self.expect("param.name", "ident").text)
                if not self.probe.cond("parse.more_params", self.accept("param.comma", ",") is not None, work=3):
                    break
        self.expect("fn.rparen", ")")
        body = self.parse_block()
        self.probe.ret("parse.function.ret")
        return Node("function", value=(name.text, tuple(params)), children=[body])

    def parse_block(self) -> Node:
        self.expect("block.lbrace", "{")
        statements: List[Node] = []
        while self.probe.while_(
            "parse.block_loop",
            self.peek_kind() not in ("}", "<eof>"),
            work=4,
        ):
            statements.append(self.parse_statement())
        self.expect("block.rbrace", "}")
        return Node("block", children=statements)

    def parse_statement(self) -> Node:
        kind = self.peek_kind()
        if self.probe.cond("parse.stmt_if", kind == "if", work=4):
            self.position += 1
            self.expect("if.lparen", "(")
            test = self.parse_expression()
            self.expect("if.rparen", ")")
            then = self.parse_block()
            node = Node("if", children=[test, then])
            if self.probe.cond("parse.stmt_else", self.accept("if.else", "else") is not None, work=3):
                node.children.append(self.parse_block())
            return node
        if self.probe.cond("parse.stmt_while", kind == "while", work=4):
            self.position += 1
            self.expect("while.lparen", "(")
            test = self.parse_expression()
            self.expect("while.rparen", ")")
            body = self.parse_block()
            return Node("while", children=[test, body])
        if self.probe.cond("parse.stmt_return", kind == "return", work=4):
            self.position += 1
            value = self.parse_expression()
            self.expect("return.semi", ";")
            return Node("return", children=[value])
        if self.probe.cond("parse.stmt_var", kind == "var", work=4):
            self.position += 1
            name = self.expect("var.name", "ident")
            self.expect("var.eq", "=")
            value = self.parse_expression()
            self.expect("var.semi", ";")
            return Node("declare", value=name.text, children=[value])
        # Assignment / expression statement.
        name = self.expect("assign.name", "ident")
        if self.probe.cond("parse.stmt_assign", self.accept("assign.eq", "=") is not None, work=4):
            value = self.parse_expression()
            self.expect("assign.semi", ";")
            return Node("assign", value=name.text, children=[value])
        self.expect("exprstmt.semi", ";")
        return Node("expr-stmt", value=name.text)

    # Precedence-climbing expression parser; one site family per level.
    _LEVELS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
        ("or", ("|",)),
        ("and", ("&",)),
        ("cmp", ("<", ">", "==")),
        ("add", ("+", "-")),
        ("mul", ("*", "/")),
    )

    def parse_expression(self, level: int = 0) -> Node:
        if level >= len(self._LEVELS):
            return self.parse_primary()
        name, operators = self._LEVELS[level]
        node = self.parse_expression(level + 1)
        while self.probe.while_(
            f"parse.{name}_chain",
            self.peek_kind() in operators,
            work=4,
        ):
            op = self.tokens[self.position].kind
            self.position += 1
            right = self.parse_expression(level + 1)
            node = Node("binop", value=op, children=[node, right])
        return node

    def parse_primary(self) -> Node:
        kind = self.peek_kind()
        if self.probe.cond("parse.prim_num", kind == "num", work=4):
            token = self.tokens[self.position]
            self.position += 1
            return Node("const", value=int(token.text))
        if self.probe.cond("parse.prim_paren", kind == "(", work=4):
            self.position += 1
            node = self.parse_expression()
            self.expect("paren.close", ")")
            return node
        token = self.expect("prim.ident", "ident")
        if self.probe.cond("parse.prim_call", self.peek_kind() == "(", work=4):
            self.position += 1
            args: List[Node] = []
            if self.probe.cond("parse.call_has_args", self.peek_kind() != ")", work=3):
                while True:
                    args.append(self.parse_expression())
                    if not self.probe.cond(
                        "parse.call_more_args",
                        self.accept("call.comma", ",") is not None,
                        work=3,
                    ):
                        break
            self.expect("call.rparen", ")")
            return Node("call", value=token.text, children=args)
        return Node("name", value=token.text)


# ----------------------------------------------------------------------
# Semantic analysis: per-intrinsic type checking
# ----------------------------------------------------------------------

def make_intrinsic_table(rng: random.Random) -> Dict[str, Tuple[int, bool]]:
    """name -> (arity, folds_constants). Deterministic for a seed."""
    table: Dict[str, Tuple[int, bool]] = {}
    for index in range(_NUM_INTRINSICS):
        arity = _INTRINSIC_ARITY[index % len(_INTRINSIC_ARITY)]
        table[f"__b{index}"] = (arity, rng.random() < 0.5)
    return table


def check_calls(probe: BranchProbe, node: Node, intrinsics: Dict[str, Tuple[int, bool]]) -> None:
    """Recursive checker; each intrinsic owns its branch sites, like
    gcc's per-builtin expanders."""
    if node.kind == "call":
        name = str(node.value)
        known = name in intrinsics
        if probe.cond("check.known_intrinsic", known, work=4):
            arity, foldable = intrinsics[name]
            if probe.cond(f"check.{name}.arity", len(node.children) != arity, work=3):
                node.children = node.children[:arity] + [
                    Node("const", value=0) for _ in range(arity - len(node.children))
                ]
            if probe.cond(f"check.{name}.impure", not foldable, work=3):
                pass  # side-effecting builtin: pin its evaluation order
            if probe.cond(
                f"check.{name}.const_args",
                foldable and all(c.kind == "const" for c in node.children),
                work=4,
            ):
                node.kind = "const"
                node.value = sum(
                    int(c.value) for c in node.children
                ) % 257
                node.children = []
                return
    for child in node.children:
        check_calls(probe, child, intrinsics)


# ----------------------------------------------------------------------
# Constant folding
# ----------------------------------------------------------------------

_FOLD_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if b else 0,
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "==": lambda a, b: int(a == b),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
}


def fold(probe: BranchProbe, node: Node) -> Node:
    """Bottom-up constant folding with per-operator rule sites."""
    node.children = [fold(probe, child) for child in node.children]
    if probe.cond("fold.is_binop", node.kind == "binop", work=4):
        left, right = node.children
        both_const = left.kind == "const" and right.kind == "const"
        op = str(node.value)
        if probe.cond(f"fold.{op}.const", both_const, work=4):
            return Node("const", value=_FOLD_OPS[op](int(left.value), int(right.value)))
        # Algebraic identities: x+0, x*1, x*0 — each its own rule.
        if probe.cond(f"fold.{op}.rzero", right.kind == "const" and right.value == 0, work=3):
            if op in ("+", "-", "|"):
                return left
            if op == "*":
                return Node("const", value=0)
        if probe.cond(f"fold.{op}.rone", right.kind == "const" and right.value == 1, work=3):
            if op in ("*", "/"):
                return left
    return node


# ----------------------------------------------------------------------
# Code generation + peephole
# ----------------------------------------------------------------------

class CodeGenerator:
    """Stack-machine emission with a register-pressure spill model."""

    def __init__(self, probe: BranchProbe) -> None:
        self.probe = probe
        self.code: List[Tuple[str, object]] = []
        self.stack_depth = 0
        self.max_registers = 8

    def emit(self, opcode: str, operand: object = None) -> None:
        probe = self.probe
        # Per-opcode emission guard: models gcc's per-pattern emit code.
        if probe.cond(f"emit.{opcode}.spill", self.stack_depth >= self.max_registers, work=4):
            self.code.append(("spill", self.stack_depth))
        self.code.append((opcode, operand))
        probe.work(5)

    def gen_function(self, function: Node) -> None:
        self.probe.call("gen.function")
        self.stack_depth = 0
        self.gen_node(function.children[0])
        self.emit("ret")
        self.probe.ret("gen.function.ret")

    def gen_node(self, node: Node) -> None:
        probe = self.probe
        kind = node.kind
        if probe.cond("gen.is_block", kind == "block", work=3):
            for child in node.children:
                self.gen_node(child)
            return
        if probe.cond("gen.is_const", kind == "const", work=3):
            self.emit("push", node.value)
            self.stack_depth += 1
            return
        if probe.cond("gen.is_name", kind == "name", work=3):
            self.emit("load", node.value)
            self.stack_depth += 1
            return
        if probe.cond("gen.is_binop", kind == "binop", work=3):
            self.gen_node(node.children[0])
            self.gen_node(node.children[1])
            self.emit(f"op{node.value}")
            self.stack_depth -= 1
            return
        if probe.cond("gen.is_call", kind == "call", work=3):
            for child in node.children:
                self.gen_node(child)
            self.emit("call", node.value)
            self.stack_depth -= max(len(node.children) - 1, 0)
            return
        if probe.cond("gen.is_if", kind == "if", work=3):
            self.gen_node(node.children[0])
            self.emit("jz")
            self.stack_depth -= 1
            self.gen_node(node.children[1])
            if probe.cond("gen.if_has_else", len(node.children) > 2, work=3):
                self.emit("jmp")
                self.gen_node(node.children[2])
            return
        if probe.cond("gen.is_while", kind == "while", work=3):
            self.emit("label")
            self.gen_node(node.children[0])
            self.emit("jz")
            self.stack_depth -= 1
            self.gen_node(node.children[1])
            self.emit("jmp")
            return
        if probe.cond("gen.is_return", kind == "return", work=3):
            self.gen_node(node.children[0])
            self.emit("ret")
            self.stack_depth -= 1
            return
        if probe.cond("gen.is_assign", kind in ("assign", "declare"), work=3):
            self.gen_node(node.children[0])
            self.emit("store", node.value)
            self.stack_depth -= 1
            return
        self.emit("nop")

    def peephole(self) -> int:
        """Adjacent-pair rewriting; one site per inspected pattern."""
        probe = self.probe
        removed = 0
        index = 0
        while probe.while_("peep.scan", index + 1 < len(self.code), work=4):
            first, second = self.code[index][0], self.code[index + 1][0]
            if probe.cond("peep.push_pop", first == "push" and second == "pop", work=3):
                del self.code[index : index + 2]
                removed += 2
                continue
            if probe.cond("peep.jmp_label", first == "jmp" and second == "label", work=3):
                del self.code[index]
                removed += 1
                continue
            if probe.cond("peep.store_load", first == "store" and second == "load"
                          and self.code[index][1] == self.code[index + 1][1], work=3):
                self.code[index + 1] = ("dup", None)
                index += 1
                continue
            if probe.cond("peep.double_nop", first == "nop" and second == "nop", work=3):
                del self.code[index]
                removed += 1
                continue
            index += 1
        return removed


class GccWorkload(Workload):
    """Compile a stream of generated translation units."""

    name = "gcc"
    category = "int"
    training_dataset = DatasetSpec("cexp.i", seed=1201, size=26)
    testing_dataset = DatasetSpec("dbxout.i", seed=77, size=32)
    alternate_datasets = (DatasetSpec("insn-emit.i", seed=55, size=18),)

    def run(self, probe: BranchProbe, rng: random.Random, dataset: DatasetSpec, scale: int) -> None:
        units = dataset.size * scale
        intrinsics = make_intrinsic_table(random.Random(4097))
        for unit in probe.loop("driver.units", units, work=30):
            probe.trap()  # open + read the source file
            source = generate_source(
                rng, functions=3 + unit % 3, statements=7 + unit % 4
            )
            tokens = lex(probe, source)
            parser = Parser(probe, tokens)
            functions = parser.parse_unit()
            generator = CodeGenerator(probe)
            for function in functions:
                check_calls(probe, function, intrinsics)
                folded = Node("function", value=function.value,
                              children=[fold(probe, function.children[0])])
                generator.gen_function(folded)
            generator.peephole()
            if probe.cond("driver.had_errors", rng.random() < 0.1, work=4):
                probe.trap()  # diagnostic write
            probe.trap()  # write the object file
