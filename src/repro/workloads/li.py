"""li analog — a Lisp interpreter (SPEC89 li / xlisp).

SPEC's li is the xlisp interpreter; its branch behaviour comes from the
evaluator's type dispatch, special-form dispatch, association-list
environment scans, and the branching of the interpreted program itself.
Table 2: train on *towers of hanoi*, test on *eight queens* — we run
exactly those two programs, written in the analog's Lisp dialect and
solved by genuine backtracking / recursion.

The interpreter is a real (small) Lisp: s-expression reader, lexical
environments as assoc-style frame chains, special forms (quote, if,
cond, define, lambda, let, and, or, begin, set!), closures, and numeric
and list builtins. Every dispatch decision and environment-scan step is
instrumented.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from .base import BranchProbe, DatasetSpec, Workload


class LispError(RuntimeError):
    """Raised for malformed programs or run-time type errors."""


@dataclass
class Pair:
    """A cons cell."""

    car: "Value"
    cdr: "Value"


@dataclass
class Closure:
    """A user-defined procedure with lexical environment."""

    params: List[str]
    body: List["Value"]
    env: "Environment"


Builtin = Callable[[List["Value"]], "Value"]
Value = Union[int, float, bool, str, None, Pair, Closure, Builtin]


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------

def tokenize(text: str) -> List[str]:
    """Split s-expression source into tokens."""
    return text.replace("(", " ( ").replace(")", " ) ").replace("'", " ' ").split()


def parse_all(text: str) -> List[Value]:
    """Parse every top-level form of a program."""
    tokens = tokenize(text)
    forms: List[Value] = []
    position = 0
    while position < len(tokens):
        form, position = _parse(tokens, position)
        forms.append(form)
    return forms


def _parse(tokens: List[str], position: int) -> Tuple[Value, int]:
    if position >= len(tokens):
        raise LispError("unexpected end of input")
    token = tokens[position]
    if token == "(":
        items: List[Value] = []
        position += 1
        while position < len(tokens) and tokens[position] != ")":
            item, position = _parse(tokens, position)
            items.append(item)
        if position >= len(tokens):
            raise LispError("missing )")
        return _to_list(items), position + 1
    if token == ")":
        raise LispError("unexpected )")
    if token == "'":
        quoted, position = _parse(tokens, position + 1)
        return _to_list(["quote", quoted]), position
    return _atom(token), position + 1


def _atom(token: str) -> Value:
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    if token == "#t":
        return True
    if token == "#f":
        return False
    return token  # symbol


def _to_list(items: List[Value]) -> Value:
    result: Value = None
    for item in reversed(items):
        result = Pair(item, result)
    return result


def list_to_python(value: Value) -> List[Value]:
    items: List[Value] = []
    while isinstance(value, Pair):
        items.append(value.car)
        value = value.cdr
    return items


# ----------------------------------------------------------------------
# Environments
# ----------------------------------------------------------------------

class Environment:
    """A frame of bindings chained to its lexical parent.

    Stored as a parallel name/value list scanned linearly — xlisp's
    assoc-list flavour, which is what makes lookup branch-rich.
    """

    __slots__ = ("names", "values", "parent")

    def __init__(self, parent: Optional["Environment"] = None) -> None:
        self.names: List[str] = []
        self.values: List[Value] = []
        self.parent = parent

    def define(self, name: str, value: Value) -> None:
        self.names.append(name)
        self.values.append(value)

    def frame_index(self, name: str) -> int:
        """Linear scan of this frame only; -1 when absent."""
        for index in range(len(self.names) - 1, -1, -1):
            if self.names[index] == name:
                return index
        return -1


class Interpreter:
    """The instrumented evaluator."""

    def __init__(self, probe: BranchProbe) -> None:
        self.probe = probe
        self.globals = Environment()
        self.cons_count = 0
        self._install_builtins()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def eval(self, expr: Value, env: Environment) -> Value:
        probe = self.probe
        while True:
            if probe.cond("eval.self_eval", not isinstance(expr, (str, Pair)), work=3):
                return expr
            if probe.cond("eval.symbol", isinstance(expr, str), work=3):
                return self._lookup(expr, env)
            head = expr.car
            if probe.cond("eval.special", isinstance(head, str) and head in _SPECIAL_FORMS, work=4):
                handler = _SPECIAL_FORMS[head]
                result, tail = handler(self, expr, env)
                if probe.cond("eval.tail_call", tail is not None, work=2):
                    expr, env = tail  # trampoline for tail position
                    continue
                return result
            # Application.
            procedure = self.eval(head, env)
            arguments: List[Value] = []
            rest = expr.cdr
            while probe.while_("apply.argloop", isinstance(rest, Pair), work=4):
                arguments.append(self.eval(rest.car, env))
                rest = rest.cdr
            if probe.cond("apply.closure", isinstance(procedure, Closure), work=4):
                probe.call("apply.enter")
                frame = Environment(procedure.env)
                if probe.cond("apply.arity_bad", len(arguments) != len(procedure.params), work=3):
                    raise LispError(f"arity mismatch calling {head}")
                for index in range(len(arguments)):
                    frame.define(procedure.params[index], arguments[index])
                    probe.work(3)
                for body_index in probe.loop("apply.bodyloop", len(procedure.body) - 1, work=3):
                    self.eval(procedure.body[body_index], frame)
                probe.ret("apply.leave")
                expr, env = procedure.body[-1], frame
                continue
            if probe.cond("apply.builtin", callable(procedure), work=3):
                return procedure(arguments)
            raise LispError(f"not a procedure: {procedure!r}")

    def _lookup(self, name: str, env: Environment) -> Value:
        probe = self.probe
        frame: Optional[Environment] = env
        while probe.while_("env.framescan", frame is not None, work=3):
            index = frame.frame_index(name)
            probe.work(2 * len(frame.names) + 1)
            if probe.cond("env.hit", index >= 0, work=3):
                return frame.values[index]
            frame = frame.parent
        raise LispError(f"unbound symbol {name}")

    def _set(self, name: str, value: Value, env: Environment) -> None:
        probe = self.probe
        frame: Optional[Environment] = env
        while probe.while_("env.setscan", frame is not None, work=3):
            index = frame.frame_index(name)
            if probe.cond("env.set_hit", index >= 0, work=3):
                frame.values[index] = value
                return
            frame = frame.parent
        raise LispError(f"set! of unbound symbol {name}")

    def _truthy(self, value: Value) -> bool:
        return not (value is False or value is None)

    # ------------------------------------------------------------------
    # Builtins
    # ------------------------------------------------------------------
    def _install_builtins(self) -> None:
        probe = self.probe

        def numeric(label: str, fn: Callable[[List[Value]], Value]) -> Builtin:
            def wrapped(args: List[Value]) -> Value:
                probe.work(4)
                return fn(args)

            return wrapped

        def fold(fn: Callable[[Value, Value], Value], unit: Value) -> Callable[[List[Value]], Value]:
            def folded(args: List[Value]) -> Value:
                if not args:
                    return unit
                acc = args[0]
                for arg in args[1:]:
                    acc = fn(acc, arg)
                return acc

            return folded

        def make_cons(args: List[Value]) -> Value:
            self.cons_count += 1
            # Allocation pressure: every 512 conses a mark-sweep-ish
            # pause scans a fraction of the heap (a bursty branch).
            if probe.cond("gc.trigger", self.cons_count % 512 == 0, work=4):
                for _ in probe.loop("gc.sweep", 24, work=6):
                    pass
            probe.work(3)
            return Pair(args[0], args[1])

        table: Dict[str, Builtin] = {
            "+": numeric("add", fold(lambda a, b: a + b, 0)),
            "-": numeric("sub", lambda a: -a[0] if len(a) == 1 else a[0] - sum(a[1:])),
            "*": numeric("mul", fold(lambda a, b: a * b, 1)),
            "quotient": numeric("div", lambda a: a[0] // a[1]),
            "remainder": numeric("mod", lambda a: a[0] % a[1]),
            "<": numeric("lt", lambda a: a[0] < a[1]),
            ">": numeric("gt", lambda a: a[0] > a[1]),
            "=": numeric("eq", lambda a: a[0] == a[1]),
            "abs": numeric("abs", lambda a: abs(a[0])),
            "cons": make_cons,
            "car": lambda a: self._car(a[0]),
            "cdr": lambda a: self._cdr(a[0]),
            "null?": lambda a: a[0] is None,
            "pair?": lambda a: isinstance(a[0], Pair),
            "not": lambda a: a[0] is False or a[0] is None,
            "list": lambda a: _to_list(a),
            "length": lambda a: len(list_to_python(a[0])),
            "display": lambda a: self._display(a[0]),
        }
        for name, fn in table.items():
            self.globals.define(name, fn)

    def _car(self, value: Value) -> Value:
        if self.probe.cond("builtin.car_nonpair", not isinstance(value, Pair), work=3):
            raise LispError("car of non-pair")
        return value.car

    def _cdr(self, value: Value) -> Value:
        if self.probe.cond("builtin.cdr_nonpair", not isinstance(value, Pair), work=3):
            raise LispError("cdr of non-pair")
        return value.cdr

    def _display(self, value: Value) -> Value:
        self.probe.trap()  # a write syscall
        return value

    def run_program(self, source: str) -> Value:
        result: Value = None
        for form in parse_all(source):
            result = self.eval(form, self.globals)
        return result


# ----------------------------------------------------------------------
# Special forms. Each handler returns (result, tail) where tail, when
# not None, is an (expr, env) pair evaluated by the trampoline so Lisp
# tail calls do not consume Python stack.
# ----------------------------------------------------------------------

def _sf_quote(interp: Interpreter, expr: Pair, env: Environment):
    return expr.cdr.car, None


def _sf_if(interp: Interpreter, expr: Pair, env: Environment):
    parts = list_to_python(expr.cdr)
    test = interp.eval(parts[0], env)
    if interp.probe.cond("sf.if_taken", interp._truthy(test), work=3):
        return None, (parts[1], env)
    if interp.probe.cond("sf.if_has_else", len(parts) > 2, work=2):
        return None, (parts[2], env)
    return None, None


def _sf_cond(interp: Interpreter, expr: Pair, env: Environment):
    clause = expr.cdr
    while interp.probe.while_("sf.cond_scan", isinstance(clause, Pair), work=4):
        test, body = clause.car.car, clause.car.cdr
        is_else = test == "else"
        if interp.probe.cond(
            "sf.cond_match",
            is_else or interp._truthy(interp.eval(test, env)),
            work=3,
        ):
            return None, (body.car, env)
        clause = clause.cdr
    return None, None


def _sf_define(interp: Interpreter, expr: Pair, env: Environment):
    target = expr.cdr.car
    if interp.probe.cond("sf.define_fn", isinstance(target, Pair), work=3):
        name = target.car
        params = [p for p in list_to_python(target.cdr)]
        body = list_to_python(expr.cdr.cdr)
        env.define(name, Closure(params, body, env))
    else:
        env.define(target, interp.eval(expr.cdr.cdr.car, env))
    return target, None


def _sf_lambda(interp: Interpreter, expr: Pair, env: Environment):
    params = [p for p in list_to_python(expr.cdr.car)]
    body = list_to_python(expr.cdr.cdr)
    return Closure(params, body, env), None


def _sf_let(interp: Interpreter, expr: Pair, env: Environment):
    frame = Environment(env)
    binding = expr.cdr.car
    while interp.probe.while_("sf.let_bindings", isinstance(binding, Pair), work=4):
        pair = binding.car
        frame.define(pair.car, interp.eval(pair.cdr.car, env))
        binding = binding.cdr
    body = list_to_python(expr.cdr.cdr)
    for index in range(len(body) - 1):
        interp.eval(body[index], frame)
    return None, (body[-1], frame)


def _sf_and(interp: Interpreter, expr: Pair, env: Environment):
    clause = expr.cdr
    value: Value = True
    while interp.probe.while_("sf.and_scan", isinstance(clause, Pair), work=3):
        value = interp.eval(clause.car, env)
        if interp.probe.cond("sf.and_false", not interp._truthy(value), work=3):
            return value, None
        clause = clause.cdr
    return value, None


def _sf_or(interp: Interpreter, expr: Pair, env: Environment):
    clause = expr.cdr
    value: Value = False
    while interp.probe.while_("sf.or_scan", isinstance(clause, Pair), work=3):
        value = interp.eval(clause.car, env)
        if interp.probe.cond("sf.or_true", interp._truthy(value), work=3):
            return value, None
        clause = clause.cdr
    return value, None


def _sf_begin(interp: Interpreter, expr: Pair, env: Environment):
    body = list_to_python(expr.cdr)
    for index in range(len(body) - 1):
        interp.eval(body[index], env)
    return None, (body[-1], env)


def _sf_set(interp: Interpreter, expr: Pair, env: Environment):
    value = interp.eval(expr.cdr.cdr.car, env)
    interp._set(expr.cdr.car, value, env)
    return value, None


_SPECIAL_FORMS = {
    "quote": _sf_quote,
    "if": _sf_if,
    "cond": _sf_cond,
    "define": _sf_define,
    "lambda": _sf_lambda,
    "let": _sf_let,
    "and": _sf_and,
    "or": _sf_or,
    "begin": _sf_begin,
    "set!": _sf_set,
}


# ----------------------------------------------------------------------
# The Table 2 programs
# ----------------------------------------------------------------------

PRELUDE_PROGRAM = """
(define (range n) (if (= n 0) '() (cons n (range (- n 1)))))
(define (sum lst) (if (null? lst) 0 (+ (car lst) (sum (cdr lst)))))
(define (rev lst acc) (if (null? lst) acc (rev (cdr lst) (cons (car lst) acc))))
(define (maxi lst best)
  (cond ((null? lst) best)
        ((> (car lst) best) (maxi (cdr lst) (car lst)))
        (else (maxi (cdr lst) best))))
(sum (range 60))
(length (rev (range 50) '()))
(maxi (range 40) 0)
"""

QUEENS_PROGRAM = """
(define (conflict? row placed dist)
  (cond ((null? placed) #f)
        ((= (car placed) row) #t)
        ((= (abs (- (car placed) row)) dist) #t)
        (else (conflict? row (cdr placed) (+ dist 1)))))

(define (place col n placed count)
  (if (= col n)
      (+ count 1)
      (try-rows 0 col n placed count)))

(define (try-rows row col n placed count)
  (if (= row n)
      count
      (try-rows (+ row 1) col n placed
                (if (conflict? row placed 1)
                    count
                    (place (+ col 1) n (cons row placed) count)))))

(define (queens n) (place 0 n '() 0))
(display (queens BOARD))
"""

HANOI_PROGRAM = """
(define (hanoi n from to via moves)
  (if (= n 0)
      moves
      (hanoi (- n 1) via to from
             (+ 1 (hanoi (- n 1) from via to moves)))))
(display (hanoi DISKS 0 2 1 0))
"""


class LiWorkload(Workload):
    """The Lisp interpreter on eight queens (test) / hanoi (train)."""

    name = "li"
    category = "int"
    training_dataset = DatasetSpec("tower of hanoi", seed=3, size=8)
    testing_dataset = DatasetSpec("eight queens", seed=8, size=6)
    alternate_datasets = (DatasetSpec("four queens", seed=4, size=4),)

    def run(self, probe: BranchProbe, rng: random.Random, dataset: DatasetSpec, scale: int) -> None:
        interp = Interpreter(probe)
        repeats = scale
        if dataset.name == "tower of hanoi":
            program = HANOI_PROGRAM.replace("DISKS", str(dataset.size))
        else:
            program = QUEENS_PROGRAM.replace("BOARD", str(dataset.size))
        for _run in probe.loop("main.repl", repeats, work=25):
            # The standard-library prelude runs before the user program
            # in every session — shared interpreter behaviour that makes
            # hanoi a meaningful training proxy for queens.
            interp.run_program(PRELUDE_PROGRAM)
            interp.run_program(program)
