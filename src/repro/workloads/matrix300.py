"""matrix300 analog — dense matrix multiply (SPEC89 matrix300).

The original benchmark multiplies 300x300 matrices with various
transpose combinations through a SAXPY kernel. Branch behaviour is
dominated by deeply-nested counted loops: almost every branch is a loop
back-edge taken many times then not-taken once, so any predictor with a
little history does extremely well — the paper uses it as one of the
"easy" floating-point benchmarks. Table 2 lists its input as built-in
(no training set).

The analog multiplies NxN matrices (N scales with the dataset) in the
same four transpose variants, through an instrumented SAXPY inner loop
plus initialisation and checksum passes.
"""

from __future__ import annotations

import random
from typing import List

from .base import BranchProbe, DatasetSpec, Workload


def _saxpy(probe: BranchProbe, variant: int, a: float, x: List[float], y: List[float]) -> None:
    """y += a * x, the instrumented inner kernel (one loop site per variant)."""
    probe.call(f"saxpy.{variant}.enter")
    for i in probe.loop(f"saxpy.{variant}.inner", len(x), work=34):
        y[i] += a * x[i]
    probe.ret(f"saxpy.{variant}.leave")


def _matmul(
    probe: BranchProbe,
    variant: int,
    a: List[List[float]],
    b: List[List[float]],
    c: List[List[float]],
) -> None:
    """C = A x B via column SAXPY, as matrix300 does.

    ``variant`` selects which transpose combination this models; each
    variant is a distinct static loop nest in the original program, so
    each gets its own branch sites.
    """
    n = len(a)
    for j in probe.loop(f"matmul.{variant}.cols", n, work=4):
        for k in probe.loop(f"matmul.{variant}.terms", n, work=5):
            scale = b[k][j]
            # Skip multiplies by exact zero — the only data-dependent
            # branch in the kernel, and b is dense so it is almost
            # never taken.
            if probe.cond(f"matmul.{variant}.skipzero", scale == 0.0, work=2):
                continue
            _saxpy(probe, variant, scale, a[k], c[j])


class Matrix300Workload(Workload):
    """Dense matmul in four transpose variants with checksum validation."""

    name = "matrix300"
    category = "fp"
    training_dataset = None  # Table 2: NA (built-in input)
    testing_dataset = DatasetSpec("built-in", seed=300, size=44)

    def run(self, probe: BranchProbe, rng: random.Random, dataset: DatasetSpec, scale: int) -> None:
        n = dataset.size
        variants = 2 * scale
        for variant in range(variants):
            a = self._fill(probe, rng, n, f"fill.a.{variant % 4}")
            b = self._fill(probe, rng, n, f"fill.b.{variant % 4}")
            c = [[0.0] * n for _ in range(n)]
            _matmul(probe, variant % 4, a, b, c)
            self._checksum(probe, c, variant % 4)

    def _fill(
        self, probe: BranchProbe, rng: random.Random, n: int, label: str
    ) -> List[List[float]]:
        matrix: List[List[float]] = []
        for _row in probe.loop(f"{label}.rows", n, work=3):
            row = [rng.uniform(-1.0, 1.0) for _ in range(n)]
            probe.work(4 * n)  # vectorised fill, no per-element branch
            matrix.append(row)
        return matrix

    def _checksum(self, probe: BranchProbe, c: List[List[float]], variant: int) -> float:
        total = 0.0
        for i in probe.loop(f"checksum.{variant}.rows", len(c), work=3):
            for j in probe.loop(f"checksum.{variant}.cols", len(c[i]), work=22):
                value = c[i][j]
                # Overflow guard: never triggers with unit inputs.
                if probe.cond(f"checksum.{variant}.overflow", abs(value) > 1e12, work=2):
                    value = 0.0
                total += value
        return total
