"""spice2g6 analog — circuit simulation (SPEC89 spice2g6).

Spice's branch behaviour mixes regular sparse-matrix loops with
data-dependent control: Newton-Raphson convergence tests per node,
nonlinear device limiting, and pivot checks during LU factorisation.
The paper groups it with doduc and the integer codes as a hard
benchmark. Table 2: train on ``short greycode.in``, test on
``greycode.in``.

The analog builds a random nonlinear resistive network (conductances +
diodes) on ``size`` nodes, then runs a transient loop: device stamping,
sparse LU with partial-pivot checks, forward/back substitution, diode
linearisation with junction-voltage limiting, and per-node convergence
tests — the same loop skeleton as spice's core.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

from .base import BranchProbe, DatasetSpec, Workload

Matrix = List[Dict[int, float]]


class SpiceWorkload(Workload):
    """Transient analysis of a random diode/resistor network."""

    name = "spice2g6"
    category = "fp"
    training_dataset = DatasetSpec("short greycode.in", seed=21, size=22)
    testing_dataset = DatasetSpec("greycode.in", seed=93, size=30)

    def run(self, probe: BranchProbe, rng: random.Random, dataset: DatasetSpec, scale: int) -> None:
        nodes = dataset.size
        timesteps = 14 * scale
        resistors = self._random_resistors(rng, nodes)
        diodes = self._random_diodes(rng, nodes)
        voltages = [0.0] * nodes
        source = 1.0
        for step in probe.loop("tran.steps", timesteps, work=20):
            source = 1.0 + 0.5 * math.sin(0.3 * step)
            converged = False
            iteration = 0
            while probe.while_("tran.newton", not converged and iteration < 12, work=8):
                matrix, rhs = self._stamp(probe, nodes, resistors, diodes, voltages, source)
                solution = self._sparse_solve(probe, matrix, rhs)
                converged = self._check_convergence(probe, voltages, solution)
                voltages = solution
                iteration += 1
            if probe.cond("tran.nonconverged", iteration >= 12, work=4):
                probe.trap()  # timestep rejected, simulator logs a warning
        probe.trap()  # write output waveforms

    # ------------------------------------------------------------------
    # Netlist construction (not instrumented: happens before the sim)
    # ------------------------------------------------------------------
    def _random_resistors(
        self, rng: random.Random, nodes: int
    ) -> List[Tuple[int, int, float]]:
        """A ladder network: banded structure, like a discretised line.

        The fixed sparsity pattern means the LU loops see the *same*
        branch sequence every Newton iteration — long deterministic
        patterns, which two-level predictors learn and counters track
        by bias, matching spice's mostly-regular matrix code.
        """
        elements = [(i, i + 1, rng.uniform(0.5, 2.0)) for i in range(nodes - 1)]
        elements += [(i, i + 2, rng.uniform(0.2, 1.0)) for i in range(nodes - 2)]
        return elements

    def _random_diodes(self, rng: random.Random, nodes: int) -> List[Tuple[int, int]]:
        """Diodes bridge every fourth ladder rung."""
        return [(i, i + 1) for i in range(1, nodes - 1, 4)]

    # ------------------------------------------------------------------
    # Simulator core (instrumented)
    # ------------------------------------------------------------------
    def _stamp(
        self,
        probe: BranchProbe,
        nodes: int,
        resistors: List[Tuple[int, int, float]],
        diodes: List[Tuple[int, int]],
        voltages: List[float],
        source: float,
    ) -> Tuple[Matrix, List[float]]:
        matrix: Matrix = [dict() for _ in range(nodes)]
        rhs = [0.0] * nodes
        for index in probe.loop("stamp.resistors", len(resistors), work=26):
            a, b, conductance = resistors[index]
            matrix[a][a] = matrix[a].get(a, 0.0) + conductance
            matrix[b][b] = matrix[b].get(b, 0.0) + conductance
            matrix[a][b] = matrix[a].get(b, 0.0) - conductance
            matrix[b][a] = matrix[b].get(a, 0.0) - conductance
        for index in probe.loop("stamp.diodes", len(diodes), work=34):
            a, b = diodes[index]
            if probe.cond("stamp.self_loop", a == b, work=2):
                continue
            v = voltages[a] - voltages[b]
            # Junction-voltage limiting: active early in the Newton
            # loop, quiescent near convergence — a phase-patterned branch.
            if probe.cond("stamp.limited", v > 0.8, work=4):
                v = 0.8
            expv = math.exp(min(v / 0.05, 40.0))
            geq = expv / 0.05 * 1e-3
            ieq = 1e-3 * (expv - 1.0) - geq * v
            matrix[a][a] = matrix[a].get(a, 0.0) + geq
            matrix[b][b] = matrix[b].get(b, 0.0) + geq
            matrix[a][b] = matrix[a].get(b, 0.0) - geq
            matrix[b][a] = matrix[b].get(a, 0.0) - geq
            rhs[a] -= ieq
            rhs[b] += ieq
        # Ground node 0 and drive node 1 with the source.
        matrix[0] = {0: 1.0}
        rhs[0] = 0.0
        matrix[1][1] = matrix[1].get(1, 0.0) + 10.0
        rhs[1] += 10.0 * source
        return matrix, rhs

    def _sparse_solve(self, probe: BranchProbe, matrix: Matrix, rhs: List[float]) -> List[float]:
        """In-place sparse Gaussian elimination with pivot checks."""
        probe.call("lu.enter")
        n = len(matrix)
        b = list(rhs)
        for k in probe.loop("lu.pivots", n, work=8):
            pivot = matrix[k].get(k, 0.0)
            # Pivot guard: essentially never taken for this diagonally-
            # dominant class of circuits — spice's zero-pivot branch.
            if probe.cond("lu.zero_pivot", abs(pivot) < 1e-12, work=4):
                matrix[k][k] = pivot = 1e-12
            for i in probe.loop(f"lu.rows.{k % 4}", n - k - 1, work=5):
                row = k + 1 + i
                coeff = matrix[row].get(k)
                # Sparsity skip: the dominant data-dependent branch of
                # the factorisation.
                if probe.cond("lu.row_sparse", coeff is None or coeff == 0.0, work=9):
                    continue
                factor = coeff / pivot
                for col, value in list(matrix[k].items()):
                    if probe.cond("lu.col_behind", col <= k, work=8):
                        continue
                    matrix[row][col] = matrix[row].get(col, 0.0) - factor * value
                b[row] -= factor * b[k]
                probe.work(6)
        solution = [0.0] * n
        for i in probe.loop("solve.back", n, work=7):
            row = n - 1 - i
            acc = b[row]
            for col, value in matrix[row].items():
                if probe.cond("solve.upper", col > row, work=8):
                    acc -= value * solution[col]
            diag = matrix[row].get(row, 1e-12)
            solution[row] = acc / diag
        probe.ret("lu.leave")
        return solution

    def _check_convergence(
        self, probe: BranchProbe, old: List[float], new: List[float]
    ) -> bool:
        """Per-node |dV| test with early exit, like spice's CONCHK."""
        worst = 0.0
        index = 0
        converged = True
        while probe.while_("conv.nodes", index < len(new), work=14):
            delta = abs(new[index] - old[index])
            if probe.cond("conv.node_moved", delta > 1e-4, work=3):
                converged = False
            if probe.cond("conv.newworst", delta > worst, work=2):
                worst = delta
            index += 1
        return converged
