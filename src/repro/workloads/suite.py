"""The nine-benchmark SPEC-analog suite (paper §4.1, Tables 1 and 2).

The suite exposes the benchmarks in the paper's order, their integer /
floating-point split, their Table 2 training/testing datasets, and
builders for the :class:`~repro.sim.runner.BenchmarkCase` objects the
experiment drivers consume. Trace generation is memoized through
:mod:`repro.trace.cache` because every figure replays the same traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.runner import BenchmarkCase
from ..trace.cache import TraceCache, default_cache
from ..trace.events import Trace
from .base import Workload
from .doduc import DoducWorkload
from .eqntott import EqntottWorkload
from .espresso import EspressoWorkload
from .fpppp import FppppWorkload
from .gcc_like import GccWorkload
from .li import LiWorkload
from .matrix300 import Matrix300Workload
from .spice import SpiceWorkload
from .tomcatv import TomcatvWorkload

#: Paper ordering: integer benchmarks first, then floating point —
#: matching the left-to-right order of the figures.
BENCHMARK_ORDER = (
    "eqntott",
    "espresso",
    "gcc",
    "li",
    "doduc",
    "fpppp",
    "matrix300",
    "spice2g6",
    "tomcatv",
)

_WORKLOAD_CLASSES = (
    EqntottWorkload,
    EspressoWorkload,
    GccWorkload,
    LiWorkload,
    DoducWorkload,
    FppppWorkload,
    Matrix300Workload,
    SpiceWorkload,
    TomcatvWorkload,
)


def all_workloads() -> Dict[str, Workload]:
    """Fresh instances of the nine workloads, keyed by benchmark name."""
    workloads = {cls.name: cls() for cls in _WORKLOAD_CLASSES}
    return {name: workloads[name] for name in BENCHMARK_ORDER}


def get_workload(name: str) -> Workload:
    """One workload by benchmark name."""
    workloads = all_workloads()
    try:
        return workloads[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; expected one of {BENCHMARK_ORDER}"
        ) from None


@dataclass(frozen=True)
class SuiteConfig:
    """Suite-wide generation parameters.

    Attributes:
        scale: linear work multiplier applied to every workload. The
            paper traces 20 M conditional branches per benchmark; the
            default scale keeps the suite laptop-sized (see DESIGN.md
            substitution #2) while preserving branch behaviour.
        benchmarks: subset of benchmarks (paper order preserved);
            None = all nine.
    """

    scale: int = 1
    benchmarks: Optional[Sequence[str]] = None

    def selected(self) -> List[str]:
        if self.benchmarks is None:
            return list(BENCHMARK_ORDER)
        unknown = set(self.benchmarks) - set(BENCHMARK_ORDER)
        if unknown:
            raise ValueError(f"unknown benchmarks: {sorted(unknown)}")
        return [name for name in BENCHMARK_ORDER if name in set(self.benchmarks)]


def build_cases(
    config: SuiteConfig = SuiteConfig(),
    cache: Optional[TraceCache] = None,
) -> List[BenchmarkCase]:
    """Generate (or fetch cached) traces for the configured suite.

    Returns:
        Benchmark cases in paper order, with training traces attached
        for the benchmarks whose Table 2 training set is not "NA".
    """
    cache = cache if cache is not None else default_cache()
    workloads = all_workloads()
    cases: List[BenchmarkCase] = []
    for name in config.selected():
        workload = workloads[name]
        test_trace = _cached_trace(cache, workload, "testing", config.scale)
        training_trace: Optional[Trace] = None
        if workload.has_training:
            training_trace = _cached_trace(cache, workload, "training", config.scale)
        cases.append(
            BenchmarkCase(
                name=name,
                category=workload.category,
                test_trace=test_trace,
                training_trace=training_trace,
            )
        )
    return cases


def _cached_trace(cache: TraceCache, workload: Workload, role: str, scale: int) -> Trace:
    dataset = (
        workload.testing_dataset if role == "testing" else workload.training_dataset
    )
    assert dataset is not None

    def _generate() -> Trace:
        # Structured-log telemetry (no-op unless enabled; deferred
        # import keeps package init acyclic). Only cache *misses* log:
        # a generation event means real work happened.
        from ..obs.log import get_logger

        logger = get_logger("workloads.suite")
        logger.event(
            "trace_generate", benchmark=workload.name, role=role,
            dataset=dataset.name, scale=scale,
        )
        trace = workload.generate(role, scale=scale)
        logger.event(
            "trace_ready", benchmark=workload.name, role=role, records=len(trace),
        )
        return trace

    return cache.get(workload.name, dataset.name, scale, _generate)


def table1_static_branch_counts(
    config: SuiteConfig = SuiteConfig(),
    cache: Optional[TraceCache] = None,
) -> Dict[str, int]:
    """Table 1 analog: static conditional branch sites per benchmark."""
    cases = build_cases(config, cache)
    return {
        case.name: len(case.test_trace.static_branch_sites()) for case in cases
    }


def table2_datasets() -> Dict[str, Dict[str, str]]:
    """Table 2: training and testing dataset names per benchmark."""
    rows: Dict[str, Dict[str, str]] = {}
    for name, workload in all_workloads().items():
        rows[name] = {
            "training": workload.training_dataset.name if workload.has_training else "NA",
            "testing": workload.testing_dataset.name,
        }
    return rows


#: The paper's Table 1 values, for side-by-side reporting.
PAPER_TABLE1 = {
    "eqntott": 277,
    "espresso": 556,
    "gcc": 6922,
    "li": 489,
    "doduc": 1149,
    "fpppp": 653,
    "matrix300": 213,
    "spice2g6": 606,
    "tomcatv": 370,
}

#: The paper's Table 2 rows, for side-by-side reporting.
PAPER_TABLE2 = {
    "eqntott": {"training": "NA", "testing": "int_pri_3.eqn"},
    "espresso": {"training": "cps", "testing": "bca"},
    "gcc": {"training": "cexp.i", "testing": "dbxout.i"},
    "li": {"training": "tower of hanoi", "testing": "eight queens"},
    "doduc": {"training": "tiny doducin", "testing": "doducin"},
    "fpppp": {"training": "NA", "testing": "natoms"},
    "matrix300": {"training": "NA", "testing": "Built-in"},
    "spice2g6": {"training": "short greycode.in", "testing": "greycode.in"},
    "tomcatv": {"training": "NA", "testing": "Built-in"},
}
