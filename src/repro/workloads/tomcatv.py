"""tomcatv analog — vectorised mesh generation (SPEC89 tomcatv).

Tomcatv generates a 2D mesh around an airfoil by iterative relaxation:
each sweep computes residuals over the interior grid, finds the maximum
residual, and solves tridiagonal systems along each row. Control flow is
counted loops plus a per-sweep convergence test — regular and highly
predictable, the second of the paper's "easy" FP benchmarks (built-in
input, no training set).

The analog relaxes a coupled (x, y) grid with the same loop structure:
residual sweeps, max-residual reduction, tridiagonal forward/backward
passes, and a convergence-checked outer iteration.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from .base import BranchProbe, DatasetSpec, Workload


class TomcatvWorkload(Workload):
    """Mesh-relaxation sweeps with tridiagonal row solves."""

    name = "tomcatv"
    category = "fp"
    training_dataset = None  # Table 2: NA (built-in input)
    testing_dataset = DatasetSpec("built-in", seed=257, size=48)

    def run(self, probe: BranchProbe, rng: random.Random, dataset: DatasetSpec, scale: int) -> None:
        n = dataset.size
        sweeps = 8 * scale
        x, y = self._init_grid(probe, rng, n)
        for _sweep in probe.loop("outer.sweeps", sweeps, work=10):
            rx, ry, rmax = self._residuals(probe, x, y, n)
            self._row_solves(probe, rx, ry, x, y, n)
            converged = rmax < 1e-9
            # The convergence exit: not taken until the final sweeps.
            if probe.cond("outer.converged", converged, work=4):
                break

    def _init_grid(
        self, probe: BranchProbe, rng: random.Random, n: int
    ) -> Tuple[List[List[float]], List[List[float]]]:
        x = [[0.0] * n for _ in range(n)]
        y = [[0.0] * n for _ in range(n)]
        for i in probe.loop("init.rows", n, work=4):
            for j in probe.loop("init.cols", n, work=20):
                # Boundary points are pinned; the branch alternates in a
                # fixed spatial pattern every sweep of j.
                boundary = i == 0 or i == n - 1 or j == 0 or j == n - 1
                if probe.cond("init.boundary", boundary, work=3):
                    x[i][j] = i / (n - 1)
                    y[i][j] = j / (n - 1)
                else:
                    x[i][j] = i / (n - 1) + rng.uniform(-0.02, 0.02)
                    y[i][j] = j / (n - 1) + rng.uniform(-0.02, 0.02)
        return x, y

    def _residuals(
        self,
        probe: BranchProbe,
        x: List[List[float]],
        y: List[List[float]],
        n: int,
    ) -> Tuple[List[List[float]], List[List[float]], float]:
        rx = [[0.0] * n for _ in range(n)]
        ry = [[0.0] * n for _ in range(n)]
        rmax = 0.0
        for i in probe.loop("res.rows", n - 2, work=5):
            ii = i + 1
            for j in probe.loop("res.cols", n - 2, work=38):
                jj = j + 1
                lap_x = (
                    x[ii - 1][jj] + x[ii + 1][jj] + x[ii][jj - 1] + x[ii][jj + 1]
                    - 4.0 * x[ii][jj]
                )
                lap_y = (
                    y[ii - 1][jj] + y[ii + 1][jj] + y[ii][jj - 1] + y[ii][jj + 1]
                    - 4.0 * y[ii][jj]
                )
                rx[ii][jj] = lap_x
                ry[ii][jj] = lap_y
                magnitude = abs(lap_x) + abs(lap_y)
                # Max-residual update: taken early in the row, rarely later.
                if probe.cond("res.newmax", magnitude > rmax, work=2):
                    rmax = magnitude
        return rx, ry, rmax

    def _row_solves(
        self,
        probe: BranchProbe,
        rx: List[List[float]],
        ry: List[List[float]],
        x: List[List[float]],
        y: List[List[float]],
        n: int,
    ) -> None:
        """Tridiagonal forward elimination + back substitution per row."""
        relax = 0.65
        for i in probe.loop("tri.rows", n - 2, work=6):
            ii = i + 1
            diag = [4.0] * n
            # Forward elimination along the row.
            for j in probe.loop("tri.forward", n - 2, work=26):
                jj = j + 1
                factor = 1.0 / diag[jj - 1]
                diag[jj] = 4.0 - factor
                rx[ii][jj] += factor * rx[ii][jj - 1] * 0.25
                ry[ii][jj] += factor * ry[ii][jj - 1] * 0.25
            # Back substitution, applying the relaxed correction.
            for j in probe.loop("tri.backward", n - 2, work=26):
                jj = n - 2 - j
                x[ii][jj] += relax * rx[ii][jj] / diag[jj]
                y[ii][jj] += relax * ry[ii][jj] / diag[jj]
