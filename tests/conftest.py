"""Shared fixtures: the SPEC-analog suite is generated once per session."""

import pytest

from repro.trace.cache import default_cache
from repro.workloads.suite import SuiteConfig, build_cases


@pytest.fixture(scope="session")
def suite_cases():
    """All nine benchmark cases at scale 1 (cached process-wide)."""
    return build_cases(SuiteConfig(), cache=default_cache())


@pytest.fixture(scope="session")
def small_cases():
    """A fast two-benchmark subset (one int, one fp) for figure tests."""
    return build_cases(
        SuiteConfig(benchmarks=["eqntott", "tomcatv"]), cache=default_cache()
    )
