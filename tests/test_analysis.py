"""Tests for the interference and misprediction-breakdown analyses."""

import pytest

from repro.analysis.breakdown import (
    learning_curve,
    misprediction_breakdown,
    per_site_report,
)
from repro.analysis.interference import (
    bht_pressure,
    first_level_interference,
    interference_report,
    second_level_interference,
)
from repro.core.twolevel import make_gag, make_pag
from repro.predictors.static import AlwaysTaken
from repro.sim.engine import ContextSwitchConfig, simulate
from repro.trace import synthetic
from repro.trace.events import TraceBuilder


class TestFirstLevelInterference:
    def test_single_branch_no_pollution(self):
        trace = synthetic.loop_trace(iterations=100, trip_count=4)
        result = first_level_interference(trace, 8)
        # One branch: global history IS its private history (after the
        # identical initialisation) except the outcome-extension step.
        assert result.pollution_rate < 0.05

    def test_interleaving_pollutes(self):
        sources = [synthetic.loop_source(3), synthetic.alternating_source()]
        trace = synthetic.interleaved(sources, length=4000)
        result = first_level_interference(trace, 8)
        assert result.pollution_rate > 0.5

    def test_sharing_the_register_is_what_pollutes(self):
        # One branch: global == private almost always. Four interleaved
        # branches: the register holds a merged stream that matches no
        # individual branch's private history.
        alone = synthetic.loop_trace(iterations=1000, trip_count=4)
        shared = synthetic.interleaved([synthetic.loop_source(4)] * 4, length=4000)
        assert first_level_interference(alone, 8).pollution_rate < 0.05
        assert first_level_interference(shared, 8).pollution_rate > 0.9

    def test_explains_gag_vs_pag_gap(self, suite_cases):
        # The benchmark where GAg loses most to PAg should be heavily
        # polluted; compare two integer benchmarks.
        gcc = next(c for c in suite_cases if c.name == "gcc")
        result = first_level_interference(gcc.test_trace, 6)
        assert result.pollution_rate > 0.8  # many interleaved branches


class TestSecondLevelInterference:
    def test_disjoint_patterns_share_nothing(self):
        builder = TraceBuilder()
        # Branch A always taken (pattern stays 1111), branch B always
        # not taken (pattern stays 0000): no shared entries after warmup.
        for _ in range(50):
            builder.conditional(0xA, True)
            builder.conditional(0xB, False)
        result = second_level_interference(builder.build(), 4)
        # They meet only at the all-ones initial pattern.
        assert result.entries_shared <= 1

    def test_conflicting_aliases_detected(self):
        builder = TraceBuilder()
        # Both branches hold pattern 1111 (always taken) but C is always
        # not taken once its register fills with NT... instead: A taken,
        # B alternates so B visits A's pattern with opposite outcomes.
        outcome_b = True
        for _ in range(200):
            builder.conditional(0xA, True)
            builder.conditional(0xB, outcome_b)
            outcome_b = not outcome_b
        result = second_level_interference(builder.build(), 1)
        assert result.destructive_updates > 0
        assert 0 < result.destructive_rate < 1

    def test_counts_are_consistent(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(3), synthetic.loop_source(5)], length=2000
        )
        result = second_level_interference(trace, 6)
        assert result.destructive_updates <= result.cross_branch_updates <= result.updates
        assert result.entries_shared <= result.entries_used


class TestBHTPressure:
    def test_small_working_set_always_hits(self):
        trace = synthetic.interleaved([synthetic.loop_source(4)] * 4, length=4000)
        pressure = bht_pressure(trace, 512, 4)
        assert pressure.hit_rate > 0.99
        assert pressure.distinct_branches == 4

    def test_oversized_working_set_evicts(self, suite_cases):
        gcc = next(c for c in suite_cases if c.name == "gcc")
        pressure = bht_pressure(gcc.test_trace, 256, 1)
        assert pressure.evictions > 0
        assert pressure.hit_rate < bht_pressure(gcc.test_trace, 512, 4).hit_rate

    def test_report_renders(self):
        trace = synthetic.loop_trace(iterations=50, trip_count=4)
        text = interference_report(trace, history_bits=8)
        assert "first level" in text
        assert "second level" in text
        assert "BHT" in text


class TestBreakdown:
    def test_shares_sum_to_one(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(t) for t in (3, 5)], length=6000
        )
        breakdown = misprediction_breakdown(make_pag(8), trace)
        shares = breakdown.shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert breakdown.total_misses == (
            breakdown.cold_misses + breakdown.post_flush_misses + breakdown.steady_misses
        )

    def test_accuracy_matches_engine(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(t) for t in (3, 5)], length=6000
        )
        breakdown = misprediction_breakdown(make_pag(8), trace)
        engine = simulate(make_pag(8), trace)
        assert breakdown.accuracy == pytest.approx(engine.accuracy)

    def test_perfectly_predictable_trace_mostly_cold_misses(self):
        trace = synthetic.loop_trace(iterations=400, trip_count=3)
        breakdown = misprediction_breakdown(make_pag(8), trace)
        assert breakdown.steady_misses < breakdown.total_branches * 0.01

    def test_flush_misses_attributed(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(t) for t in (3, 5, 7)],
            length=30_000,
            work_per_branch=30,
        )
        breakdown = misprediction_breakdown(
            make_pag(8), trace, context_switches=ContextSwitchConfig(interval=20_000)
        )
        assert breakdown.post_flush_misses > 0

    def test_no_misses_zero_shares(self):
        builder = TraceBuilder()
        for _ in range(10):
            builder.conditional(0xA, True)
        breakdown = misprediction_breakdown(AlwaysTaken(), builder.build())
        assert breakdown.total_misses == 0
        assert breakdown.shares() == {"cold": 0.0, "post_flush": 0.0, "steady": 0.0}


class TestLearningCurve:
    def test_window_count(self):
        trace = synthetic.loop_trace(iterations=100, trip_count=10)
        curve = learning_curve(make_pag(8), trace, windows=10)
        assert 10 <= len(curve) <= 11

    def test_warmup_visible(self):
        trace = synthetic.periodic_trace([True, True, False, True], repeats=2000)
        curve = learning_curve(make_gag(8), trace, windows=20)
        assert curve[-1] >= curve[0]
        assert curve[-1] > 0.95

    def test_empty_trace(self):
        assert learning_curve(make_gag(4), TraceBuilder().build()) == []

    def test_window_validation(self):
        trace = synthetic.loop_trace(iterations=10, trip_count=3)
        with pytest.raises(ValueError):
            learning_curve(make_gag(4), trace, windows=0)


class TestTraceSourceStreaming:
    """The analyses accept any TraceSource and are block-size invariant."""

    @pytest.fixture(scope="class")
    def trace(self):
        return synthetic.interleaved(
            [synthetic.loop_source(3), synthetic.alternating_source()],
            length=4000,
        )

    @pytest.fixture(scope="class")
    def streamed(self, trace, tmp_path_factory):
        from repro.trace.stream import open_stream, save_source

        path = tmp_path_factory.mktemp("analysis") / "trace.btrs"
        save_source(trace, path)
        with open_stream(path) as source:
            yield source

    def test_first_level_block_size_invariant(self, trace):
        reference = first_level_interference(trace, 8)
        for block_size in (1, 7, 64, 10**9):
            assert first_level_interference(trace, 8, block_size=block_size) == reference

    def test_second_level_block_size_invariant(self, trace):
        reference = second_level_interference(trace, 6)
        for block_size in (1, 13, 512):
            assert second_level_interference(trace, 6, block_size=block_size) == reference

    def test_bht_pressure_block_size_invariant(self, trace):
        reference = bht_pressure(trace)
        for block_size in (1, 7, 1000):
            assert bht_pressure(trace, block_size=block_size) == reference

    def test_breakdown_block_size_invariant(self, trace):
        reference = misprediction_breakdown(make_pag(8), trace)
        for block_size in (1, 7, 64):
            assert (
                misprediction_breakdown(make_pag(8), trace, block_size=block_size)
                == reference
            )

    def test_streamed_source_matches_in_memory(self, trace, streamed):
        assert first_level_interference(streamed, 8) == first_level_interference(trace, 8)
        assert second_level_interference(streamed, 6) == second_level_interference(trace, 6)
        assert bht_pressure(streamed) == bht_pressure(trace)
        assert misprediction_breakdown(make_pag(8), streamed) == misprediction_breakdown(
            make_pag(8), trace
        )
        assert per_site_report(make_pag(8), streamed, top=5) == per_site_report(
            make_pag(8), trace, top=5
        )
        assert learning_curve(make_pag(8), streamed, windows=10) == learning_curve(
            make_pag(8), trace, windows=10
        )

    def test_streamed_source_block_sized(self, trace, streamed):
        assert (
            misprediction_breakdown(make_pag(8), streamed, block_size=17)
            == misprediction_breakdown(make_pag(8), trace)
        )

    def test_interference_report_forwards_block_size(self, trace):
        assert interference_report(trace, history_bits=6, block_size=33) == (
            interference_report(trace, history_bits=6)
        )


class TestPerSiteReport:
    def test_ranks_by_misses(self):
        builder = TraceBuilder()
        for i in range(300):
            builder.conditional(0xA, True)
            builder.conditional(0xB, i % 2 == 0)  # hard alternating-ish
        reports = per_site_report(AlwaysTaken(), builder.build(), top=2)
        assert reports[0].pc == 0xB
        assert reports[0].mispredictions >= reports[-1].mispredictions

    def test_fields_consistent(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(3), synthetic.alternating_source()], length=2000
        )
        for report in per_site_report(make_pag(6), trace, top=5):
            assert 0 <= report.taken_rate <= 1
            assert report.mispredictions <= report.executions
            assert 0 <= report.accuracy <= 1
