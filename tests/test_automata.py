"""Unit tests for the pattern-history automata (paper Figure 2)."""

import pytest

from repro.core.automata import (
    A1,
    A2,
    A3,
    A4,
    LAST_TIME,
    PAPER_AUTOMATA,
    PRESET_NOT_TAKEN,
    PRESET_TAKEN,
    AutomatonSpec,
    automaton_by_name,
    preset_bit,
    saturating_counter,
    shift_register_automaton,
    simulate_sequence,
)

T, N = True, False


class TestLastTime:
    def test_one_bit(self):
        assert LAST_TIME.bits == 1
        assert LAST_TIME.num_states == 2

    def test_initial_state_predicts_taken(self):
        assert LAST_TIME.predict(LAST_TIME.initial_state) is True

    def test_predicts_previous_outcome(self):
        state = LAST_TIME.initial_state
        for outcome in (T, N, N, T, T):
            state = LAST_TIME.next_state(state, outcome)
            assert LAST_TIME.predict(state) is outcome

    def test_alternating_sequence_never_correct_after_warmup(self):
        # T,N,T,N...: last-time always predicts the previous (wrong) value.
        outcomes = [N, T] * 20
        correct, total = simulate_sequence(LAST_TIME, outcomes)
        assert total == 40
        assert correct <= 1  # only the very first prediction can be right


class TestA1:
    def test_initial_state(self):
        assert A1.initial_state == 3

    def test_predicts_not_taken_only_from_state_zero(self):
        assert [A1.predict(s) for s in range(4)] == [False, True, True, True]

    def test_is_shift_register(self):
        # From state 0b10, a taken shifts to 0b01.
        assert A1.next_state(0b10, True) == 0b01
        assert A1.next_state(0b10, False) == 0b00
        assert A1.next_state(0b11, True) == 0b11

    def test_needs_two_not_takens_to_predict_not_taken(self):
        state = A1.initial_state
        state = A1.next_state(state, False)
        assert A1.predict(state) is True  # one NT is not enough
        state = A1.next_state(state, False)
        assert A1.predict(state) is False


class TestA2:
    def test_is_saturating_counter(self):
        assert A2.next_state(0, False) == 0  # saturates low
        assert A2.next_state(3, True) == 3  # saturates high
        assert A2.next_state(1, True) == 2
        assert A2.next_state(2, False) == 1

    def test_threshold_at_two(self):
        assert [A2.predict(s) for s in range(4)] == [False, False, True, True]

    def test_hysteresis_on_bursty_stream(self):
        # One NT glitch inside a taken run costs exactly one misprediction.
        outcomes = [T] * 10 + [N] + [T] * 10
        correct, total = simulate_sequence(A2, outcomes)
        assert total - correct == 1

    def test_loop_pattern_one_miss_per_iteration(self):
        # trip-count-5 loop: T T T T N repeated; A2 mispredicts the exit.
        outcomes = ([T] * 4 + [N]) * 8
        correct, total = simulate_sequence(A2, outcomes)
        assert total - correct == 8


class TestA3A4:
    def test_a3_fast_fall(self):
        assert A3.next_state(2, False) == 0
        # Everything else matches A2.
        for state in range(4):
            assert A3.next_state(state, True) == A2.next_state(state, True)
        assert A3.next_state(3, False) == A2.next_state(3, False)
        assert A3.next_state(1, False) == A2.next_state(1, False)

    def test_a4_fast_rise(self):
        assert A4.next_state(1, True) == 3
        for state in range(4):
            assert A4.next_state(state, False) == A2.next_state(state, False)
        assert A4.next_state(0, True) == A2.next_state(0, True)
        assert A4.next_state(2, True) == A2.next_state(2, True)

    def test_all_counters_agree_on_biased_stream(self):
        outcomes = [T] * 50
        for spec in (A2, A3, A4):
            correct, total = simulate_sequence(spec, outcomes)
            assert correct == total


class TestPresetBit:
    def test_never_changes_state(self):
        for spec in (PRESET_TAKEN, PRESET_NOT_TAKEN):
            state = spec.initial_state
            for outcome in (T, N, T, N):
                assert spec.next_state(state, outcome) == state

    def test_prediction_matches_preset(self):
        assert PRESET_TAKEN.predict(PRESET_TAKEN.initial_state) is True
        assert PRESET_NOT_TAKEN.predict(PRESET_NOT_TAKEN.initial_state) is False

    def test_factory(self):
        assert preset_bit(True).initial_state == 1
        assert preset_bit(False).initial_state == 0


class TestGeneralizedAutomata:
    def test_saturating_counter_matches_a2_transitions(self):
        sc = saturating_counter(2)
        assert sc.transitions == A2.transitions
        assert sc.predictions == A2.predictions

    def test_three_bit_counter(self):
        sc = saturating_counter(3)
        assert sc.num_states == 8
        assert sc.next_state(7, True) == 7
        assert sc.next_state(0, False) == 0
        assert sc.predict(4) is True
        assert sc.predict(3) is False

    def test_shift_register_matches_a1(self):
        sr = shift_register_automaton(2, threshold=1)
        assert sr.transitions == A1.transitions
        assert sr.predictions == A1.predictions

    def test_shift_register_threshold(self):
        sr = shift_register_automaton(3, threshold=2)
        assert sr.predict(0b011) is True
        assert sr.predict(0b001) is False

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            saturating_counter(0)
        with pytest.raises(ValueError):
            shift_register_automaton(0)
        with pytest.raises(ValueError):
            shift_register_automaton(2, threshold=-1)


class TestSpecValidation:
    def test_rejects_too_many_states_for_bits(self):
        with pytest.raises(ValueError):
            AutomatonSpec("bad", 1, 0, ((0, 1), (0, 1), (2, 2)), (False, True, True))

    def test_rejects_mismatched_predictions(self):
        with pytest.raises(ValueError):
            AutomatonSpec("bad", 2, 0, ((0, 1), (0, 1)), (False,))

    def test_rejects_invalid_initial_state(self):
        with pytest.raises(ValueError):
            AutomatonSpec("bad", 2, 7, ((0, 1), (0, 1)), (False, True))

    def test_rejects_out_of_range_transition(self):
        with pytest.raises(ValueError):
            AutomatonSpec("bad", 2, 0, ((0, 5), (0, 1)), (False, True))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AutomatonSpec("bad", 1, 0, (), ())


class TestRegistry:
    def test_paper_automata_by_name(self):
        assert automaton_by_name("a2") is A2
        assert automaton_by_name("LT") is LAST_TIME

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            automaton_by_name("A9")

    def test_paper_set_complete(self):
        assert set(PAPER_AUTOMATA) == {"LT", "A1", "A2", "A3", "A4"}

    def test_bits_per_entry(self):
        assert LAST_TIME.bits == 1
        for name in ("A1", "A2", "A3", "A4"):
            assert PAPER_AUTOMATA[name].bits == 2
