"""Tests for the predictability-bound oracles."""

import pytest

from repro.analysis.bounds import bias_bound, history_bound, predictability_bounds
from repro.core.twolevel import make_pag
from repro.predictors.btb import btb_a2
from repro.predictors.static import ProfileGuided
from repro.sim.engine import simulate
from repro.trace import synthetic
from repro.trace.events import TraceBuilder


class TestBiasBound:
    def test_constant_branch_is_fully_biased(self):
        builder = TraceBuilder()
        for _ in range(50):
            builder.conditional(0xA, True)
        assert bias_bound(builder.build()) == 1.0

    def test_alternating_branch_is_half(self):
        trace = synthetic.periodic_trace([True, False], repeats=100)
        assert bias_bound(trace) == pytest.approx(0.5)

    def test_matches_in_sample_profile_oracle(self):
        # Profiling on the SAME trace it is scored on = the bias bound.
        trace = synthetic.biased_trace(5000, taken_probability=0.7, seed=3)
        oracle = ProfileGuided.trained_on(trace)
        assert simulate(oracle, trace).accuracy == pytest.approx(bias_bound(trace))

    def test_upper_bounds_profile_and_loose_on_btb(self):
        trace = synthetic.loop_trace(iterations=400, trip_count=4)
        bound = bias_bound(trace)
        assert simulate(btb_a2(), trace).accuracy <= bound + 1e-9

    def test_empty(self):
        assert bias_bound(TraceBuilder().build()) == 0.0


class TestHistoryBound:
    def test_loop_fully_predictable_with_enough_history(self):
        trace = synthetic.loop_trace(iterations=300, trip_count=4)
        assert history_bound(trace, 4) == pytest.approx(1.0, abs=0.01)

    def test_loop_not_predictable_with_too_little_history(self):
        # trip 8 loop: a 3-bit self-history cannot see the exit coming
        # (the last 3 outcomes are TTT both mid-loop and pre-exit).
        trace = synthetic.loop_trace(iterations=300, trip_count=8)
        shallow = history_bound(trace, 3)
        deep = history_bound(trace, 8)
        assert deep > shallow
        assert deep > 0.99

    def test_monotone_in_history_bits(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(t) for t in (3, 6, 9)], length=12_000
        )
        bounds = [history_bound(trace, k) for k in (1, 3, 6, 10)]
        for earlier, later in zip(bounds, bounds[1:]):
            assert later >= earlier - 1e-9

    def test_at_least_bias_bound(self):
        trace = synthetic.markov_trace(5000, 0.9, 0.8, seed=4)
        assert history_bound(trace, 6) >= bias_bound(trace) - 1e-9

    def test_upper_bounds_real_pag_on_stationary_trace(self):
        # On *stationary* behaviour the static oracle is a true ceiling;
        # only phase changes let adaptive counters exceed it.
        trace = synthetic.interleaved(
            [synthetic.loop_source(t) for t in (3, 5, 7)], length=20_000
        )
        bound = history_bound(trace, 8)
        measured = simulate(make_pag(8), trace).accuracy
        assert measured <= bound + 1e-9

    def test_adaptive_beats_static_oracle_on_phase_change(self):
        # Phase 1: always taken, so context 111111 -> T dominates the
        # whole-trace majority. Phase 2: a trip-7 loop, where the same
        # all-ones context deterministically precedes the exit (N). The
        # static oracle must mispredict every phase-2 exit; an adaptive
        # counter relearns the context after two misses.
        pc = 0x1000  # both phases must be the SAME static branch
        phase1 = synthetic.periodic_trace([True], repeats=6000, pc=pc)
        phase2 = synthetic.loop_trace(iterations=860, trip_count=7, pc=pc)
        trace = synthetic.concat([phase1, phase2])
        bound = history_bound(trace, 6)
        measured = simulate(make_pag(6), trace).accuracy
        assert measured > bound + 0.01

    def test_global_mode_differs_from_per_address(self):
        # Correlated pair: GLOBAL history sees A's outcome before B;
        # B's self-history is useless. The global bound must be higher.
        trace = synthetic.correlated_pair_trace(6000, seed=9)
        per_address = history_bound(trace, 6, per_address=True)
        global_mode = history_bound(trace, 6, per_address=False)
        assert global_mode > per_address + 0.1


class TestPredictabilityBounds:
    def test_bundle(self):
        trace = synthetic.loop_trace(iterations=200, trip_count=5)
        bounds = predictability_bounds(trace, 6)
        assert bounds.history_bits == 6
        assert bounds.conditional_branches == len(trace)
        assert bounds.history_headroom == pytest.approx(
            bounds.history_bound - bounds.bias_bound
        )
        # A trip-5 loop: bias gets 4/5, history gets ~all of it.
        assert bounds.bias_bound == pytest.approx(0.8)
        assert bounds.history_bound > 0.99
