"""Tests for the ASCII chart rendering."""

import pytest

from repro.experiments.charts import (
    accuracy_bars_from_matrix,
    render_bars,
    render_series,
    render_sparkline,
)
from repro.sim.results import ResultMatrix, SimulationResult


class TestRenderBars:
    def test_basic_layout(self):
        text = render_bars(["alpha", "b"], [0.9, 0.95], width=20, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("alpha |")
        assert "90.00%" in lines[1]
        assert "95.00%" in lines[2]

    def test_max_value_fills_bar(self):
        text = render_bars(["a", "b"], [0.5, 1.0], width=10, floor=0.0, ceiling=1.0)
        full_line = text.splitlines()[1]
        assert "█" * 10 in full_line

    def test_floor_scaling_magnifies_differences(self):
        zoomed = render_bars(["a", "b"], [0.90, 0.92], width=40, floor=0.89, ceiling=0.92)
        lines = zoomed.splitlines()
        bar_a = lines[0].count("█")
        bar_b = lines[1].count("█")
        assert bar_b - bar_a > 10  # 2 points spread over most of the width

    def test_non_percent_mode(self):
        text = render_bars(["cost"], [39424.0], percent=False, floor=0, ceiling=50000)
        assert "%" not in text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])

    def test_empty(self):
        assert render_bars([], [], title="empty") == "empty"


class TestSparkline:
    def test_length_matches_values(self):
        assert len(render_sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_blocks(self):
        spark = render_sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert spark == "".join(sorted(spark))

    def test_flat_series(self):
        spark = render_sparkline([5, 5, 5])
        assert len(set(spark)) == 1

    def test_empty(self):
        assert render_sparkline([]) == ""


class TestRenderSeries:
    def test_shared_scale(self):
        text = render_series(
            {"low": [0.1, 0.2], "high": [0.8, 0.9]},
            x_labels=[1, 2],
            title="S",
        )
        lines = text.splitlines()
        assert lines[0] == "S"
        # The low series must use lower block characters than the high one.
        low_line = next(line for line in lines if line.lstrip().startswith("low"))
        high_line = next(line for line in lines if line.lstrip().startswith("high"))
        assert "10.0% -> 20.0%" in low_line
        assert "80.0% -> 90.0%" in high_line

    def test_empty(self):
        assert render_series({}, title="nothing") == "nothing"


class TestMatrixBars:
    def test_sorted_by_gmean(self):
        matrix = ResultMatrix(benchmarks=["x"], categories={"x": "int"})
        matrix.add("worse", SimulationResult("worse", "x", "", 100, 80))
        matrix.add("better", SimulationResult("better", "x", "", 100, 95))
        text = accuracy_bars_from_matrix(matrix)
        lines = text.splitlines()
        assert "better" in lines[0]
        assert "worse" in lines[1]
