"""Tests for the automaton model checker (repro.check.automata)."""

import pytest

from repro.check import run_checks
from repro.check.automata import check_automata, verify_spec, verify_table
from repro.core.automata import (
    A2,
    PAPER_AUTOMATA,
    PRESET_TAKEN,
    AutomatonSpec,
    saturating_counter,
)


def _rules(findings):
    return {f.rule for f in findings}


class TestCleanCorpus:
    def test_default_corpus_is_clean(self):
        findings, examined = check_automata()
        assert findings == []
        assert examined >= 7  # five paper automata + presets at minimum

    def test_each_paper_automaton_verifies(self):
        for spec in PAPER_AUTOMATA.values():
            assert verify_spec(spec) == []

    def test_preset_bits_exempt_from_reachability(self):
        # PB's states are isolated self-loops by design.
        assert verify_spec(PRESET_TAKEN) == []

    def test_generated_families_verify(self):
        for bits in (1, 2, 3, 5):
            assert verify_spec(saturating_counter(bits)) == []


def _doctored(spec: AutomatonSpec, **overrides) -> AutomatonSpec:
    """Clone a spec with fields replaced, bypassing __post_init__ so the
    verifier (not the constructor) must catch the damage."""
    clone = object.__new__(AutomatonSpec)
    for field in ("name", "bits", "initial_state", "transitions", "predictions"):
        object.__setattr__(clone, field, overrides.get(field, getattr(spec, field)))
    return clone


class TestMutationDetection:
    """The acceptance-criteria mutations must produce pointed diagnostics."""

    def test_non_total_table_rejected(self):
        # A2 with state 1's transition row truncated to one outcome.
        bad = _doctored(A2, transitions=((0, 1), (0,), (1, 3), (2, 3)))
        findings = verify_spec(bad)
        assert "automata/totality" in _rules(findings)
        assert any("state 1" in f.message for f in findings)

    def test_missing_transition_row(self):
        bad = _doctored(A2, transitions=((0, 1), (0, 2), (1, 3)))
        findings = verify_spec(bad)
        assert findings  # prediction count no longer matches state count
        assert "automata/prediction-totality" in _rules(findings)

    def test_out_of_range_successor_rejected(self):
        bad = _doctored(A2, transitions=((0, 1), (0, 2), (1, 7), (2, 3)))
        findings = verify_spec(bad)
        assert "automata/determinism" in _rules(findings)
        assert any("delta(2, 1) = 7" in f.message for f in findings)

    def test_non_integer_successor_rejected(self):
        bad = _doctored(A2, transitions=((0, 1), (0, 2), (1, True), (2, 3)))
        assert "automata/determinism" in _rules(verify_spec(bad))

    def test_wrong_prediction_threshold_rejected(self):
        # A2 predicting taken in state 1 violates the >= 2 threshold.
        bad = _doctored(A2, predictions=(False, True, True, True))
        findings = verify_spec(bad)
        assert "automata/paper-semantics" in _rules(findings)
        assert any("state 1" in f.message for f in findings)

    def test_broken_saturation_rejected(self):
        # delta(3, T) must saturate at 3, not wrap to 0. The wrap makes
        # constant-taken streams cycle through the not-taken states, so
        # the behavioural walk already rejects it before the name-keyed
        # semantics check gets a turn.
        bad = _doctored(A2, transitions=((0, 1), (0, 2), (1, 3), (2, 0)))
        findings = verify_spec(bad)
        assert _rules(findings) & {"automata/convergence", "automata/paper-semantics"}

    def test_wrong_variant_rejected_by_paper_semantics(self):
        # A3's fast-fall table under A2's name: structurally flawless and
        # behaviourally convergent, so only the name-keyed Figure-4 check
        # can notice the automaton is not the one it claims to be.
        bad = _doctored(A2, transitions=((0, 1), (0, 2), (0, 3), (2, 3)))
        findings = verify_spec(bad)
        assert _rules(findings) == {"automata/paper-semantics"}
        assert any("delta(2, N) must be 1, got 0" in f.message for f in findings)

    def test_capacity_overflow_rejected(self):
        bad = _doctored(A2, bits=1)
        assert "automata/capacity" in _rules(verify_spec(bad))

    def test_unreachable_state_rejected(self):
        spec = AutomatonSpec(
            name="X",
            bits=2,
            initial_state=0,
            transitions=((0, 1), (0, 1), (0, 3), (2, 3)),
            predictions=(False, True, False, True),
        )
        assert "automata/reachability" in _rules(verify_table(
            spec.name, spec.transitions, spec.predictions,
            spec.initial_state, spec.bits,
        ))

    def test_stuck_automaton_rejected(self):
        # Oscillates between two taken-predicting states: moving (so not
        # exempt as a frozen preset) but incapable of ever predicting
        # not-taken.
        findings = verify_table("stuck", ((1, 1), (0, 0)), (True, True), 0, 1)
        rules = _rules(findings)
        assert "automata/responsiveness" in rules
        assert "automata/convergence" in rules

    def test_fully_frozen_automaton_is_exempt(self):
        # A one-state self-loop is a preset bit; the frozen exemption
        # that covers PB must cover it too.
        assert verify_table("frozen", ((0, 0),), (True,), 0, 1) == []

    def test_mutated_corpus_fails_check(self):
        bad = _doctored(A2, transitions=((0, 1), (0,), (1, 3), (2, 3)))
        findings, examined = check_automata([A2, bad])
        assert examined == 2
        assert findings and all(f.severity == "error" for f in findings)


class TestReportIntegration:
    def test_run_checks_automata_only(self):
        report = run_checks(only=["automata"])
        assert report.ok
        assert report.analyzers_run == ["automata"]
        assert report.examined["automata"] >= 7

    def test_unknown_analyzer_raises(self):
        with pytest.raises(KeyError):
            run_checks(only=["automata", "nope"])
