"""Tests for ``python -m repro.check`` (repro.check.cli) and the report."""

import json
from pathlib import Path

import pytest

from repro.check import ANALYZERS
from repro.check.cli import main
from repro.check.report import (
    BASELINE_SCHEMA,
    ERROR,
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    WARNING,
    CheckReport,
    Finding,
    load_baseline,
    write_baseline,
)


class TestExitCodes:
    def test_clean_repo_exits_zero(self, capsys):
        assert main(["--only", "automata"]) == 0
        out = capsys.readouterr().out
        assert "automata" in out
        assert "0 error(s)" in out

    def test_strict_clean_repo_exits_zero(self, capsys):
        assert main(["--only", "automata,determinism", "--strict"]) == 0

    def test_unknown_analyzer_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--only", "nonsense"])
        assert excinfo.value.code == 2
        assert "unknown analyzer" in capsys.readouterr().err

    def test_findings_exit_one(self, capsys, monkeypatch):
        def boom():
            finding = Finding("boom", "boom/fail", ERROR, "here", "it broke")
            return [finding], 1

        monkeypatch.setitem(ANALYZERS, "boom", boom)
        assert main(["--only", "boom"]) == 1
        out = capsys.readouterr().out
        assert "error: here: [boom/fail] it broke" in out

    def test_warning_exits_zero_unless_strict(self, capsys, monkeypatch):
        def nag():
            finding = Finding("nag", "nag/hmm", WARNING, "there", "look at this")
            return [finding], 1

        monkeypatch.setitem(ANALYZERS, "nag", nag)
        assert main(["--only", "nag"]) == 0
        assert main(["--only", "nag", "--strict"]) == 1


class TestOutputs:
    def test_json_output_parses(self, capsys):
        assert main(["--only", "automata", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["errors"] == 0
        assert payload["analyzers"][0]["name"] == "automata"
        assert payload["analyzers"][0]["examined"] >= 7

    def test_list_enumerates_analyzers(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ANALYZERS:
            assert name in out

    def test_only_restricts_run(self, capsys):
        assert main(["--only", "determinism", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in payload["analyzers"]] == ["determinism"]

    def test_only_selects_new_analyzers(self, capsys):
        assert main(["--only", "kernels,concurrency,resources", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in payload["analyzers"]] == [
            "kernels", "concurrency", "resources",
        ]


class TestSarif:
    def _boom(self):
        return [
            Finding("boom", "boom/file-rule", ERROR, "src/repro/x.py:7", "torn"),
            Finding("boom", "boom/logical-rule", WARNING, "repro.sim.kernels", "odd"),
            Finding("boom", "boom/file-rule", ERROR, "src/repro/y.py:9", "torn too"),
        ], 2

    def test_sarif_to_stdout_validates_structurally(self, capsys, monkeypatch):
        monkeypatch.setitem(ANALYZERS, "boom", self._boom)
        assert main(["--only", "boom", "--sarif", "-"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro.check"
        rules = run["tool"]["driver"]["rules"]
        # Rules are deduplicated in first-appearance order.
        assert [r["id"] for r in rules] == ["boom/file-rule", "boom/logical-rule"]
        assert rules[0]["defaultConfiguration"]["level"] == "error"
        results = run["results"]
        assert len(results) == 3
        first = results[0]
        assert first["ruleId"] == "boom/file-rule" and first["ruleIndex"] == 0
        assert first["level"] == "error"
        assert first["message"]["text"] == "torn"
        physical = first["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "src/repro/x.py"
        assert physical["region"]["startLine"] == 7
        assert first["partialFingerprints"]["reproCheck/v1"]
        # Non-file subjects become logical locations.
        logical = results[1]["locations"][0]["logicalLocations"]
        assert logical == [{"name": "repro.sim.kernels"}]
        assert results[2]["ruleIndex"] == 0  # same rule, same index

    def test_sarif_to_file(self, capsys, tmp_path, monkeypatch):
        target = tmp_path / "out" / "check.sarif"
        assert main(["--only", "automata", "--sarif", str(target)]) == 0
        doc = json.loads(target.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"] == []
        assert f"SARIF log written to {target}" in capsys.readouterr().out

    def test_clean_run_emits_empty_results_not_empty_file(self, capsys, tmp_path):
        target = tmp_path / "check.sarif"
        assert main(["--only", "resources", "--sarif", str(target)]) == 0
        doc = json.loads(target.read_text())
        assert doc["runs"][0]["tool"]["driver"]["rules"] == []


class TestBaseline:
    def _boom(self):
        return [
            Finding("boom", "boom/fail", ERROR, "src/repro/x.py:7", "it broke"),
        ], 1

    def test_write_then_apply_round_trip(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setitem(ANALYZERS, "boom", self._boom)
        baseline = tmp_path / "baseline.json"
        assert main(["--only", "boom", "--write-baseline", str(baseline)]) == 0
        assert "1 suppression(s) written" in capsys.readouterr().out
        payload = json.loads(baseline.read_text())
        assert payload["schema"] == BASELINE_SCHEMA
        (record,) = payload["suppressions"]
        assert record["rule"] == "boom/fail"
        assert record["location"] == "src/repro/x.py"
        # The same finding is now suppressed and the gate passes...
        assert main(["--only", "boom", "--strict",
                     "--baseline", str(baseline)]) == 0
        assert "1 finding(s) baseline-suppressed" in capsys.readouterr().out
        # ...but --no-baseline still shows the unsuppressed truth.
        assert main(["--only", "boom", "--baseline", str(baseline),
                     "--no-baseline"]) == 1

    def test_baseline_does_not_hide_new_findings(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setitem(ANALYZERS, "boom", self._boom)
        baseline = tmp_path / "baseline.json"
        assert main(["--only", "boom", "--write-baseline", str(baseline)]) == 0
        def worse():
            findings, examined = self._boom()
            findings.append(
                Finding("boom", "boom/fail", ERROR, "src/repro/z.py:1", "new"))
            return findings, examined
        monkeypatch.setitem(ANALYZERS, "boom", worse)
        capsys.readouterr()
        assert main(["--only", "boom", "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "src/repro/z.py:1" in out
        assert "1 finding(s) baseline-suppressed" in out

    def test_default_baseline_picked_up_from_cwd(self, capsys, tmp_path,
                                                 monkeypatch):
        monkeypatch.setitem(ANALYZERS, "boom", self._boom)
        monkeypatch.chdir(tmp_path)
        assert main(["--only", "boom", "--write-baseline"]) == 0
        assert (tmp_path / ".check-baseline.json").is_file()
        capsys.readouterr()
        assert main(["--only", "boom", "--strict"]) == 0
        assert "baseline-suppressed" in capsys.readouterr().out

    def test_malformed_baseline_fails_loudly(self, capsys, tmp_path, monkeypatch):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/1", "suppressions": []}')
        with pytest.raises(SystemExit) as excinfo:
            main(["--only", "automata", "--baseline", str(bad)])
        assert excinfo.value.code == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_fingerprint_survives_line_drift(self):
        before = Finding("a", "a/r", ERROR, "src/repro/x.py:7", "m")
        after = Finding("a", "a/r", ERROR, "src/repro/x.py:99", "m")
        other = Finding("a", "a/r", ERROR, "src/repro/x.py:7", "different")
        assert before.fingerprint() == after.fingerprint()
        assert before.fingerprint() != other.fingerprint()

    def test_load_baseline_validates_records(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps(
            {"schema": BASELINE_SCHEMA, "suppressions": [{"rule": "x"}]}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_write_baseline_deduplicates(self, tmp_path):
        report = CheckReport()
        finding = Finding("a", "a/r", ERROR, "src/repro/x.py:7", "m")
        report.extend("a", [finding, finding], 1)
        path = tmp_path / "b.json"
        assert write_baseline(path, report) == 1

    def test_committed_baseline_is_valid_and_loadable(self):
        committed = Path(__file__).resolve().parent.parent / ".check-baseline.json"
        assert committed.is_file()
        fingerprints = load_baseline(committed)
        # The fixed tree needs no suppressions; the file exists so the
        # workflow (and the default-pickup path) is exercised in CI.
        assert fingerprints == set()


class TestReport:
    def test_severity_validated(self):
        with pytest.raises(ValueError):
            Finding("a", "a/r", "fatal", "loc", "msg")

    def test_exit_code_matrix(self):
        clean = CheckReport()
        clean.extend("a", [], 3)
        assert clean.exit_code() == 0
        assert clean.exit_code(strict=True) == 0

        warned = CheckReport()
        warned.extend("a", [Finding("a", "a/w", WARNING, "x", "m")], 1)
        assert warned.exit_code() == 0
        assert warned.exit_code(strict=True) == 1

        failed = CheckReport()
        failed.extend("a", [Finding("a", "a/e", ERROR, "x", "m")], 1)
        assert failed.exit_code() == 1
        assert failed.exit_code(strict=True) == 1

    def test_text_report_marks_failures(self):
        report = CheckReport()
        report.extend("good", [], 2)
        report.extend("bad", [Finding("bad", "bad/r", ERROR, "x", "m")], 2)
        text = report.format_text()
        assert "[  ok] good" in text
        assert "[FAIL] bad" in text
        assert "1 error(s), 0 warning(s) from 2 analyzer(s)" in text

    def test_round_trips_to_dict(self):
        report = CheckReport()
        report.extend("a", [Finding("a", "a/r", ERROR, "x", "m")], 5)
        payload = json.loads(report.to_json())
        assert payload["findings"][0]["rule"] == "a/r"
        assert payload["analyzers"] == [{"name": "a", "examined": 5}]
