"""Tests for ``python -m repro.check`` (repro.check.cli) and the report."""

import json

import pytest

from repro.check import ANALYZERS
from repro.check.cli import main
from repro.check.report import ERROR, WARNING, CheckReport, Finding


class TestExitCodes:
    def test_clean_repo_exits_zero(self, capsys):
        assert main(["--only", "automata"]) == 0
        out = capsys.readouterr().out
        assert "automata" in out
        assert "0 error(s)" in out

    def test_strict_clean_repo_exits_zero(self, capsys):
        assert main(["--only", "automata,determinism", "--strict"]) == 0

    def test_unknown_analyzer_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--only", "nonsense"])
        assert excinfo.value.code == 2
        assert "unknown analyzer" in capsys.readouterr().err

    def test_findings_exit_one(self, capsys, monkeypatch):
        def boom():
            finding = Finding("boom", "boom/fail", ERROR, "here", "it broke")
            return [finding], 1

        monkeypatch.setitem(ANALYZERS, "boom", boom)
        assert main(["--only", "boom"]) == 1
        out = capsys.readouterr().out
        assert "error: here: [boom/fail] it broke" in out

    def test_warning_exits_zero_unless_strict(self, capsys, monkeypatch):
        def nag():
            finding = Finding("nag", "nag/hmm", WARNING, "there", "look at this")
            return [finding], 1

        monkeypatch.setitem(ANALYZERS, "nag", nag)
        assert main(["--only", "nag"]) == 0
        assert main(["--only", "nag", "--strict"]) == 1


class TestOutputs:
    def test_json_output_parses(self, capsys):
        assert main(["--only", "automata", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["errors"] == 0
        assert payload["analyzers"][0]["name"] == "automata"
        assert payload["analyzers"][0]["examined"] >= 7

    def test_list_enumerates_analyzers(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ANALYZERS:
            assert name in out

    def test_only_restricts_run(self, capsys):
        assert main(["--only", "determinism", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in payload["analyzers"]] == ["determinism"]


class TestReport:
    def test_severity_validated(self):
        with pytest.raises(ValueError):
            Finding("a", "a/r", "fatal", "loc", "msg")

    def test_exit_code_matrix(self):
        clean = CheckReport()
        clean.extend("a", [], 3)
        assert clean.exit_code() == 0
        assert clean.exit_code(strict=True) == 0

        warned = CheckReport()
        warned.extend("a", [Finding("a", "a/w", WARNING, "x", "m")], 1)
        assert warned.exit_code() == 0
        assert warned.exit_code(strict=True) == 1

        failed = CheckReport()
        failed.extend("a", [Finding("a", "a/e", ERROR, "x", "m")], 1)
        assert failed.exit_code() == 1
        assert failed.exit_code(strict=True) == 1

    def test_text_report_marks_failures(self):
        report = CheckReport()
        report.extend("good", [], 2)
        report.extend("bad", [Finding("bad", "bad/r", ERROR, "x", "m")], 2)
        text = report.format_text()
        assert "[  ok] good" in text
        assert "[FAIL] bad" in text
        assert "1 error(s), 0 warning(s) from 2 analyzer(s)" in text

    def test_round_trips_to_dict(self):
        report = CheckReport()
        report.extend("a", [Finding("a", "a/r", ERROR, "x", "m")], 5)
        payload = json.loads(report.to_json())
        assert payload["findings"][0]["rule"] == "a/r"
        assert payload["analyzers"] == [{"name": "a", "examined": 5}]
