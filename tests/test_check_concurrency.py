"""Tests for the fork/pickle-safety lint (repro.check.concurrency)."""

import textwrap

from repro.check.concurrency import check_concurrency, scan_source


def _scan(body: str):
    return scan_source(textwrap.dedent(body))


def _rules(findings):
    return {f.rule for f in findings}


class TestRepoIsClean:
    def test_multiprocessing_surface_passes(self):
        findings, examined = check_concurrency()
        assert findings == []
        assert examined == 5  # sim/parallel, obs/live, obs/runner, obs/spans, obs/resources


class TestShippedCallables:
    def test_lambda_in_submit(self):
        findings = _scan("""
            def run(pool, items):
                return [pool.submit(lambda x: x + 1, item) for item in items]
        """)
        assert _rules(findings) == {"conc/lambda-to-worker"}

    def test_nested_function_shipped(self):
        findings = _scan("""
            def run(pool, trace):
                def work(chunk):
                    return score(chunk, trace)
                return pool.map(work, chunks(trace))
        """)
        assert _rules(findings) == {"conc/lambda-to-worker"}

    def test_bound_method_shipped(self):
        findings = _scan("""
            class Runner:
                def run(self, pool, items):
                    return pool.map(self.score, items)
        """)
        assert _rules(findings) == {"conc/bound-method-to-worker"}

    def test_process_target_lambda(self):
        findings = _scan("""
            def spawn(mp):
                p = mp.Process(target=lambda: drain(), args=())
                p.start()
        """)
        assert _rules(findings) == {"conc/lambda-to-worker"}

    def test_module_level_function_is_fine(self):
        findings = _scan("""
            def work(chunk):
                return len(chunk)

            def run(pool, items):
                return pool.map(work, items)
        """)
        assert findings == []


class TestWorkerGlobalWrites:
    def test_global_statement_write(self):
        findings = _scan("""
            _COUNT = 0

            def work(chunk):
                global _COUNT
                _COUNT = _COUNT + 1
                return chunk

            def run(pool, items):
                return pool.map(work, items)
        """)
        assert _rules(findings) == {"conc/global-write-in-worker"}

    def test_subscript_write_to_module_dict(self):
        findings = _scan("""
            _MEMO = {}

            def work(path):
                _MEMO[path] = load(path)
                return _MEMO[path]

            def run(pool, paths):
                return pool.map(work, paths)
        """)
        assert _rules(findings) == {"conc/global-write-in-worker"}

    def test_transitive_callee_is_a_worker_too(self):
        findings = _scan("""
            _MEMO = {}

            def helper(path):
                _MEMO[path] = load(path)

            def work(path):
                helper(path)

            def run(pool, paths):
                return pool.map(work, paths)
        """)
        assert _rules(findings) == {"conc/global-write-in-worker"}

    def test_mutator_method_on_module_list(self):
        findings = _scan("""
            _SEEN = []

            def work(item):
                _SEEN.append(item)

            def run(pool, items):
                return pool.map(work, items)
        """)
        assert _rules(findings) == {"conc/global-write-in-worker"}

    def test_pragma_sanctions_per_process_memo(self):
        findings = _scan("""
            _MEMO = {}

            def work(path):
                _MEMO[path] = load(path)  # check: allow(conc/global-write-in-worker)
                return _MEMO[path]

            def run(pool, paths):
                return pool.map(work, paths)
        """)
        assert findings == []

    def test_local_writes_in_worker_are_fine(self):
        findings = _scan("""
            def work(items):
                acc = {}
                for item in items:
                    acc[item] = item
                return acc

            def run(pool, chunks):
                return pool.map(work, chunks)
        """)
        assert findings == []

    def test_parent_side_writes_are_fine(self):
        findings = _scan("""
            _RESULTS = {}

            def work(item):
                return item * 2

            def run(pool, items):
                for item, value in zip(items, pool.map(work, items)):
                    _RESULTS[item] = value
        """)
        assert findings == []


class TestManagerGuard:
    def test_unconditional_manager(self):
        findings = _scan("""
            import multiprocessing

            def run():
                manager = multiprocessing.Manager()
                return manager.Queue()
        """)
        assert _rules(findings) == {"conc/unguarded-manager"}

    def test_guarded_manager_is_fine(self):
        findings = _scan("""
            import multiprocessing

            def run(observer):
                if observer is not None:
                    manager = multiprocessing.Manager()
                    return manager.Queue()
                return None
        """)
        assert findings == []

    def test_unconditional_raw_queue(self):
        findings = _scan("""
            import multiprocessing

            def run():
                return multiprocessing.Queue()
        """)
        assert _rules(findings) == {"conc/unguarded-manager"}


class TestHandlesAcrossFork:
    def test_handle_shipped_as_argument(self):
        findings = _scan("""
            def work(stream):
                return stream.read()

            def run(pool, path):
                stream = open(path, "rb")
                return pool.submit(work, stream)
        """)
        assert "conc/handle-across-fork" in _rules(findings)

    def test_handle_captured_by_shipped_closure(self):
        findings = _scan("""
            def run(pool, path):
                stream = open(path, "rb")
                def work():
                    return stream.read()
                return pool.submit(work)
        """)
        # The closure itself is unpicklable AND captures the handle.
        assert _rules(findings) == {
            "conc/lambda-to-worker", "conc/handle-across-fork",
        }

    def test_shipping_the_path_is_fine(self):
        findings = _scan("""
            def work(path):
                with open(path, "rb") as stream:
                    return stream.read()

            def run(pool, path):
                return pool.submit(work, path)
        """)
        assert findings == []


class TestLocations:
    def test_findings_carry_file_and_line(self):
        findings = scan_source(
            "def run(pool, xs):\n"
            "    return pool.map(lambda x: x, xs)\n",
            filename="module.py",
        )
        assert findings[0].location == "module.py:2"
