"""Tests for the determinism lint (repro.check.determinism)."""

import textwrap

from repro.check.determinism import check_determinism, scan_source


def _scan(body: str):
    return scan_source(textwrap.dedent(body))


def _rules(findings):
    return {f.rule for f in findings}


class TestRepoIsClean:
    def test_hot_paths_pass(self):
        findings, examined = check_determinism()
        assert findings == []
        assert examined >= 20  # core + predictors + sim modules


class TestRngDetection:
    def test_import_random(self):
        assert _rules(_scan("import random\n")) == {"det/rng"}

    def test_from_random_import(self):
        assert _rules(_scan("from random import Random\n")) == {"det/rng"}

    def test_import_secrets_and_uuid(self):
        assert _rules(_scan("import secrets\nimport uuid\n")) == {"det/rng"}

    def test_numpy_random(self):
        findings = _scan("import numpy\nx = numpy.random\n")
        assert "det/rng" in _rules(findings)


class TestWallClockDetection:
    def test_time_time(self):
        findings = _scan("import time\nstamp = time.time()\n")
        assert "det/wall-clock" in _rules(findings)

    def test_datetime_now(self):
        findings = _scan("when = datetime.now()\n")
        assert "det/wall-clock" in _rules(findings)

    def test_perf_counter_allowed(self):
        # Telemetry timing never feeds results; perf_counter is exempt.
        assert _scan("import time\nstart = time.perf_counter()\n") == []


class TestEnvDetection:
    def test_os_environ(self):
        findings = _scan("import os\nmode = os.environ['MODE']\n")
        assert "det/env" in _rules(findings)

    def test_os_getenv(self):
        findings = _scan("import os\nmode = os.getenv('MODE')\n")
        assert "det/env" in _rules(findings)


class TestSetIteration:
    def test_for_over_set_call(self):
        findings = _scan("for x in set(items):\n    use(x)\n")
        assert _rules(findings) == {"det/set-iteration"}

    def test_for_over_set_literal(self):
        findings = _scan("for x in {1, 2, 3}:\n    use(x)\n")
        assert _rules(findings) == {"det/set-iteration"}

    def test_comprehension_over_set(self):
        findings = _scan("out = [f(x) for x in set(items)]\n")
        assert _rules(findings) == {"det/set-iteration"}

    def test_sorted_set_is_fine(self):
        assert _scan("for x in sorted(set(items)):\n    use(x)\n") == []

    def test_building_a_set_is_fine(self):
        assert _scan("seen = {f(x) for x in items}\n") == []

    def test_list_iteration_is_fine(self):
        assert _scan("for x in [1, 2, 3]:\n    use(x)\n") == []


class TestBuiltinHash:
    def test_hash_call_is_warning(self):
        findings = _scan("key = hash(name)\n")
        assert _rules(findings) == {"det/builtin-hash"}
        assert all(f.severity == "warning" for f in findings)

    def test_hashlib_is_fine(self):
        assert _scan("import hashlib\nkey = hashlib.sha256(b'x').hexdigest()\n") == []


class TestPragmas:
    def test_allow_pragma_suppresses(self):
        findings = _scan(
            "for x in set(items):  # check: allow(det/set-iteration)\n    use(x)\n"
        )
        assert findings == []

    def test_findings_carry_location(self):
        findings = scan_source("import random\n", filename="module.py")
        assert findings[0].location == "module.py:1"
