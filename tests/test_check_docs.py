"""Tests for the docs accuracy analyzer (repro.check.docs)."""

from repro.check.docs import check_docs, repo_root


def _write_docs(tmp_path, readme="", doc=""):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(readme)
    (tmp_path / "docs" / "guide.md").write_text(doc)
    return tmp_path


class TestCleanRepo:
    def test_actual_docs_are_accurate(self):
        findings, examined = check_docs()
        assert findings == []
        assert examined > 0

    def test_repo_root_points_at_repo(self):
        assert (repo_root() / "src" / "repro").is_dir()


class TestLinkChecking:
    def test_valid_relative_link(self, tmp_path):
        root = _write_docs(tmp_path, readme="see [guide](docs/guide.md)")
        findings, _ = check_docs(root)
        assert findings == []

    def test_broken_link_reported(self, tmp_path):
        root = _write_docs(tmp_path, readme="see [gone](docs/missing.md)")
        findings, _ = check_docs(root)
        assert len(findings) == 1
        assert findings[0].rule == "docs/broken-link"
        assert "missing.md" in findings[0].message
        assert findings[0].location.startswith("README.md:")

    def test_external_and_anchor_links_skipped(self, tmp_path):
        root = _write_docs(
            tmp_path,
            readme="[a](https://example.org) [b](#section) [c](mailto:x@y.z)",
        )
        findings, _ = check_docs(root)
        assert findings == []

    def test_link_with_anchor_resolves_file_part(self, tmp_path):
        root = _write_docs(tmp_path, doc="[self](guide.md#section)")
        findings, _ = check_docs(root)
        assert findings == []

    def test_links_inside_fenced_code_skipped(self, tmp_path):
        root = _write_docs(
            tmp_path, readme="```\n[not a link](nowhere.md)\n```\n"
        )
        findings, _ = check_docs(root)
        assert findings == []


class TestSymbolChecking:
    def test_live_symbols_resolve(self, tmp_path):
        root = _write_docs(
            tmp_path,
            doc="`repro.trace.stream.TraceWriter` and "
                "`repro.sim.engine.simulate` and `repro.trace.Trace.head`",
        )
        findings, _ = check_docs(root)
        assert findings == []

    def test_stale_symbol_reported(self, tmp_path):
        root = _write_docs(tmp_path, doc="call `repro.sim.engine.simulate_fast`")
        findings, _ = check_docs(root)
        assert [f.rule for f in findings] == ["docs/stale-symbol"]
        assert "simulate_fast" in findings[0].message

    def test_stale_module_reported(self, tmp_path):
        root = _write_docs(tmp_path, doc="see `repro.nonexistent_module.thing`")
        findings, _ = check_docs(root)
        assert [f.rule for f in findings] == ["docs/stale-symbol"]

    def test_file_extension_references_skipped(self, tmp_path):
        root = _write_docs(tmp_path, doc="install via `repro.pth`")
        findings, _ = check_docs(root)
        assert findings == []

    def test_each_symbol_reported_once_per_doc(self, tmp_path):
        root = _write_docs(
            tmp_path, doc="`repro.sim.bogus` here\nand `repro.sim.bogus` again"
        )
        findings, _ = check_docs(root)
        assert len(findings) == 1


class TestSkipBehaviour:
    def test_missing_docs_tree_examines_nothing(self, tmp_path):
        findings, examined = check_docs(tmp_path)
        assert findings == []
        assert examined == 0

    def test_registered_in_analyzers(self):
        from repro.check import ANALYZERS, run_checks

        assert "docs" in ANALYZERS
        report = run_checks(only=["docs"])
        assert report.ok
