"""Tests for the kernel-encoding prover (repro.check.kernels)."""

import copy

import numpy as np
import pytest

from repro.check.automata import default_specs
from repro.check.kernels import check_kernels, verify_ops
from repro.core.automata import PAPER_AUTOMATA, supports_vector_scan
from repro.sim.kernels import automaton_ops

A2 = PAPER_AUTOMATA["A2"]
A3 = PAPER_AUTOMATA["A3"]


def _rules(findings):
    return {f.rule for f in findings}


def _mutable_ops(spec):
    """A deep copy of the live table bundle, safe to corrupt.

    deepcopy severs the compose_flat -> compose view, so tests that
    corrupt ``compose`` must corrupt ``compose_flat`` in step.
    """
    return copy.deepcopy(automaton_ops(spec))


class TestRepoIsClean:
    def test_every_registered_automaton_proves(self):
        findings, examined = check_kernels()
        assert findings == []
        # The prover must cover the full registered corpus, not a sample.
        assert examined == len(default_specs())
        assert examined >= 14

    def test_no_spec_is_skipped(self):
        # Every spec is either proved or gate-checked; there is no
        # third bucket the prover could silently drop a spec into.
        eligible = [s for s in default_specs() if supports_vector_scan(s)]
        gated = [s for s in default_specs() if not supports_vector_scan(s)]
        assert len(eligible) + len(gated) == len(default_specs())
        assert eligible  # the paper's automata are scan-eligible
        assert gated  # ideal/shift-register machines exercise the gate


class TestCleanOps:
    def test_clean_ops_have_no_findings(self):
        for spec in (A2, A3):
            assert verify_ops(spec, automaton_ops(spec)) == []


class TestMutationSensitivity:
    """Single-table corruptions must yield exactly their own finding."""

    def test_single_lut_entry_corruption(self):
        ops = _mutable_ops(A2)
        ops.compose[5, 7] ^= 0b11
        ops.compose_flat[5 * 256 + 7] ^= 0b11
        findings = verify_ops(A2, ops)
        assert findings, "corrupted LUT entry went undetected"
        assert _rules(findings) == {"kernels/compose-lut"}
        assert any("compose[5, 7]" in f.message for f in findings)
        assert all(f.location == A2.name for f in findings)

    @pytest.mark.parametrize("a,b", [(0, 0), (255, 255), (128, 64)])
    def test_any_single_lut_entry_corruption(self, a, b):
        ops = _mutable_ops(A3)
        ops.compose[a, b] = (int(ops.compose[a, b]) + 1) % 256
        ops.compose_flat[a * 256 + b] = ops.compose[a, b]
        assert "kernels/compose-lut" in _rules(verify_ops(A3, ops))

    def test_flat_copy_divergence(self):
        ops = _mutable_ops(A2)
        ops.compose_flat[1234] ^= 0b01
        findings = verify_ops(A2, ops)
        assert _rules(findings) == {"kernels/compose-lut"}
        assert any("compose_flat" in f.message for f in findings)

    def test_swapped_packed_codes(self):
        ops = _mutable_ops(A3)
        ops.pow_codes[0, 1], ops.pow_codes[1, 1] = (
            int(ops.pow_codes[1, 1]), int(ops.pow_codes[0, 1]),
        )
        findings = verify_ops(A3, ops)
        assert _rules(findings) == {"kernels/packed-code"}

    def test_corrupt_decode_table(self):
        ops = _mutable_ops(A2)
        ops.apply[100, 2] = (int(ops.apply[100, 2]) + 1) % 4
        findings = verify_ops(A2, ops)
        # Decode corruption breaks the bit semantics and the packing
        # inverse at once; both are foundational-stage findings.
        assert _rules(findings) <= {"kernels/decode-table", "kernels/packing-weights"}
        assert "kernels/decode-table" in _rules(findings)

    def test_flipped_prediction_bit(self):
        ops = _mutable_ops(A2)
        ops.pred4[1] = not bool(ops.pred4[1])
        findings = verify_ops(A2, ops)
        assert _rules(findings) == {"kernels/pred-table"}

    def test_wrong_init_state(self):
        ops = _mutable_ops(A2)
        ops.init = (A2.initial_state + 1) % A2.num_states
        findings = verify_ops(A2, ops)
        assert _rules(findings) == {"kernels/init-state"}

    def test_corrupt_head_accumulator(self):
        ops = _mutable_ops(A2)
        ops.head_wrong[1, 0, 2] += 1
        findings = verify_ops(A2, ops)
        assert _rules(findings) == {"kernels/run-scoring"}

    def test_corrupt_tail_rate_overflows_range(self):
        ops = _mutable_ops(A2)
        ops.tail_mis[0, 0] = 2
        findings = verify_ops(A2, ops)
        assert "kernels/dtype-overflow" in _rules(findings)

    def test_corrupt_const_flag(self):
        ops = _mutable_ops(A2)
        ops.is_const[0] = not bool(ops.is_const[0])
        findings = verify_ops(A2, ops)
        assert _rules(findings) == {"kernels/const-detect"}

    def test_wrong_dtype_short_circuits(self):
        ops = _mutable_ops(A2)
        ops.compose = ops.compose.astype(np.int64)
        findings = verify_ops(A2, ops)
        assert _rules(findings) == {"kernels/dtype-overflow"}

    def test_mutation_reports_cap(self):
        # A fully zeroed LUT must not flood the report.
        ops = _mutable_ops(A2)
        ops.compose[:] = 0
        ops.compose_flat[:] = 0
        findings = verify_ops(A2, ops)
        assert _rules(findings) == {"kernels/compose-lut"}
        assert len(findings) <= 6


class TestGateHonesty:
    def test_gated_specs_are_rejected_honestly(self):
        for spec in default_specs():
            if not supports_vector_scan(spec):
                from repro.check.kernels import _verify_gate

                assert _verify_gate(spec) == []


class TestCorpusSelection:
    def test_explicit_specs_restrict_the_corpus(self):
        findings, examined = check_kernels(specs=[A2, A3])
        assert findings == []
        assert examined == 2
