"""Tests for the spec-picklability checker (repro.check.pickling)."""

import pickle

from repro.check.pickling import (
    DEFAULT_SPEC_NAMES,
    check_pickling,
    probe_trace,
    training_trace,
)
from repro.sim.parallel import PredictorSpec


def _rules(findings):
    return {f.rule for f in findings}


class TestProbeTraces:
    def test_probe_trace_is_deterministic(self):
        first = probe_trace()
        second = probe_trace()
        assert len(first) == len(second)
        assert [(e.pc, e.taken) for e in first] == [(e.pc, e.taken) for e in second]

    def test_probe_trace_covers_multiple_sites(self):
        trace = probe_trace(branches_per_site=10)
        assert set(trace.static_branch_sites()) == {0x1000, 0x2040, 0x3080, 0x41C0}

    def test_training_trace_builds(self):
        assert len(training_trace()) == 1200


class TestCleanCorpus:
    def test_default_corpus_is_clean(self):
        findings, examined = check_pickling()
        assert findings == []
        assert examined == len(DEFAULT_SPEC_NAMES)

    def test_corpus_spans_grammar_families(self):
        # Any registry growth should widen this corpus, not shrink it.
        prefixes = {name.split("-")[0].split("(")[0] for name in DEFAULT_SPEC_NAMES}
        for family in ("gag", "pag", "pap", "gshare", "btb", "gsg", "psg"):
            assert family in prefixes


class TestFailureDetection:
    def test_unbuildable_spec_reported(self):
        findings, examined = check_pickling(names=["no-such-scheme-9"])
        assert examined == 1
        assert _rules(findings) == {"pickle/construction"}
        assert findings[0].severity == "error"
        assert "no-such-scheme-9" in findings[0].location

    def test_findings_name_the_offending_spec(self):
        findings, _ = check_pickling(names=["gag-6", "bogus"])
        assert [f.location for f in findings] == ["bogus"]


class TestSpecContract:
    """Pin the PredictorSpec properties the checker relies on."""

    def test_round_trip_preserves_cache_key(self):
        spec = PredictorSpec("gag-6")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.cache_key == spec.cache_key

    def test_distinct_specs_have_distinct_cache_keys(self):
        assert PredictorSpec("gag-6").cache_key != PredictorSpec("gag-8").cache_key
