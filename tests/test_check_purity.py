"""Tests for the purity lint (repro.check.purity)."""

import textwrap

from repro.check.purity import analyze_source, check_purity


def _analyze(body: str):
    return analyze_source(textwrap.dedent(body))


def _rules(findings):
    return {f.rule for f in findings}


class TestRepoIsClean:
    def test_shipped_predictors_pass(self):
        findings, examined = check_purity()
        assert findings == []
        # GAg/PAg/PAp/GAp/gshare/GSg/PSg/BTB/static/extension classes.
        assert examined >= 12


class TestPredictMutationDetection:
    def test_direct_attribute_assignment(self):
        findings = _analyze("""
            class Bad(BranchPredictor):
                def predict(self, pc, target=0):
                    self.x = 1
                    return True
                def update(self, pc, taken, target=0):
                    pass
        """)
        assert _rules(findings) == {"purity/predict-mutates-state"}

    def test_aug_assignment(self):
        # The acceptance-criteria mutation: `self.x += 1` in predict.
        findings = _analyze("""
            class Bad(BranchPredictor):
                def predict(self, pc, target=0):
                    self.x += 1
                    return True
                def update(self, pc, taken, target=0):
                    pass
        """)
        assert _rules(findings) == {"purity/predict-mutates-state"}
        assert any("aug-assigns self.x" in f.message for f in findings)

    def test_subscript_store(self):
        findings = _analyze("""
            class Bad(BranchPredictor):
                def predict(self, pc, target=0):
                    self.table[pc] = True
                    return True
                def update(self, pc, taken, target=0):
                    pass
        """)
        assert _rules(findings) == {"purity/predict-mutates-state"}

    def test_mutating_call_on_self_attribute(self):
        findings = _analyze("""
            class Bad(BranchPredictor):
                def predict(self, pc, target=0):
                    entry, hit = self.bht.access(pc)
                    return True
                def update(self, pc, taken, target=0):
                    pass
        """)
        assert _rules(findings) == {"purity/predict-mutates-state"}

    def test_transitive_mutation_through_helper(self):
        findings = _analyze("""
            class Bad(BranchPredictor):
                def _helper(self, pc):
                    return self._other(pc)
                def _other(self, pc):
                    self.counter += 1
                    return 0
                def predict(self, pc, target=0):
                    return self._helper(pc) > 0
                def update(self, pc, taken, target=0):
                    pass
        """)
        assert _rules(findings) == {"purity/predict-mutates-state"}
        assert any("predict -> _helper -> _other" in f.message for f in findings)

    def test_inherited_predict_checked_against_subclass_helpers(self):
        findings = _analyze("""
            class Base(BranchPredictor):
                def predict(self, pc, target=0):
                    return self._lookup(pc)
                def update(self, pc, taken, target=0):
                    pass
            class Leaf(Base):
                def _lookup(self, pc):
                    self.hits += 1
                    return True
                def predict(self, pc, target=0):
                    return self._lookup(pc)
                def update(self, pc, taken, target=0):
                    pass
        """)
        assert "purity/predict-mutates-state" in _rules(findings)

    def test_pure_predict_passes(self):
        findings = _analyze("""
            class Good(BranchPredictor):
                def predict(self, pc, target=0):
                    entry = self.bht.peek(pc)
                    value = entry.value if entry is not None else self._mask
                    return self.pht.predict(value)
                def update(self, pc, taken, target=0):
                    entry, hit = self.bht.access(pc)
                    self.pht.update(entry.value, taken)
        """)
        assert findings == []

    def test_update_may_mutate(self):
        findings = _analyze("""
            class Good(BranchPredictor):
                def predict(self, pc, target=0):
                    return True
                def update(self, pc, taken, target=0):
                    self.count += 1
                    self.bht.access(pc)
        """)
        assert findings == []

    def test_non_predictor_class_ignored(self):
        findings = _analyze("""
            class Table:
                def predict(self, pattern):
                    return True
                def update(self, pattern, taken):
                    self._states[pattern] = 1
        """)
        assert findings == []

    def test_local_variable_assignment_is_fine(self):
        findings = _analyze("""
            class Good(BranchPredictor):
                def predict(self, pc, target=0):
                    index = (pc >> 2) % 16
                    return self.pht.predict(index)
                def update(self, pc, taken, target=0):
                    pass
        """)
        assert findings == []


class TestNondeterminismDetection:
    def test_random_in_update(self):
        findings = _analyze("""
            import random
            class Bad(BranchPredictor):
                def predict(self, pc, target=0):
                    return True
                def update(self, pc, taken, target=0):
                    if random.random() < 0.5:
                        self.count += 1
        """)
        assert "purity/nondeterministic-input" in _rules(findings)

    def test_wall_clock_in_predict(self):
        findings = _analyze("""
            import time
            class Bad(BranchPredictor):
                def predict(self, pc, target=0):
                    return time.time() % 2 == 0
                def update(self, pc, taken, target=0):
                    pass
        """)
        assert "purity/nondeterministic-input" in _rules(findings)

    def test_os_environ_in_update(self):
        findings = _analyze("""
            import os
            class Bad(BranchPredictor):
                def predict(self, pc, target=0):
                    return True
                def update(self, pc, taken, target=0):
                    self.mode = os.environ.get("MODE")
        """)
        assert "purity/nondeterministic-input" in _rules(findings)


class TestPragmas:
    def test_allow_pragma_suppresses(self):
        findings = _analyze("""
            class Memoizing(BranchPredictor):
                def predict(self, pc, target=0):
                    self.memo[pc] = True  # check: allow(purity/predict-mutates-state)
                    return True
                def update(self, pc, taken, target=0):
                    pass
        """)
        assert findings == []

    def test_wildcard_pragma_suppresses(self):
        findings = _analyze("""
            class Memoizing(BranchPredictor):
                def predict(self, pc, target=0):
                    self.memo[pc] = True  # check: allow(*)
                    return True
                def update(self, pc, taken, target=0):
                    pass
        """)
        assert findings == []

    def test_pragma_for_other_rule_does_not_suppress(self):
        findings = _analyze("""
            class Bad(BranchPredictor):
                def predict(self, pc, target=0):
                    self.memo[pc] = True  # check: allow(det/rng)
                    return True
                def update(self, pc, taken, target=0):
                    pass
        """)
        assert "purity/predict-mutates-state" in _rules(findings)


class TestOpaqueCalls:
    def test_self_escaping_is_warning(self):
        findings = _analyze("""
            class Suspicious(BranchPredictor):
                def predict(self, pc, target=0):
                    return helper(self, pc)
                def update(self, pc, taken, target=0):
                    pass
        """)
        assert _rules(findings) == {"purity/predict-opaque-call"}
        assert all(f.severity == "warning" for f in findings)
