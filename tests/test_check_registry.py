"""Tests for the registry/export consistency checker (repro.check.registry)."""

import sys
import textwrap
import types

from repro.check.registry import AUDITED_MODULES, _audit_exports, check_registry


def _rules(findings):
    return {f.rule for f in findings}


def _fake_module(name, body, tmp_path, all_names):
    """Materialise a throwaway module on disk and in sys.modules."""
    path = tmp_path / f"{name}.py"
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    module = types.ModuleType(name)
    module.__file__ = str(path)
    exec(compile(textwrap.dedent(body), str(path), "exec"), module.__dict__)
    module.__all__ = all_names
    sys.modules[name] = module
    return module


class TestRepoIsClean:
    def test_audited_surface_is_consistent(self):
        findings, examined = check_registry()
        assert findings == []
        # 8 modules + Table 3 rows + friendly representatives.
        assert examined > len(AUDITED_MODULES)


class TestExportAudit:
    def test_broken_export_detected(self, tmp_path):
        name = "check_registry_fixture_broken"
        _fake_module(name, "def real():\n    pass\n", tmp_path, ["real", "ghost"])
        try:
            findings = _audit_exports(name)
        finally:
            del sys.modules[name]
        assert _rules(findings) == {"registry/broken-export"}
        assert "ghost" in findings[0].message

    def test_duplicate_export_detected(self, tmp_path):
        name = "check_registry_fixture_dup"
        _fake_module(name, "def real():\n    pass\n", tmp_path, ["real", "real"])
        try:
            findings = _audit_exports(name)
        finally:
            del sys.modules[name]
        assert _rules(findings) == {"registry/duplicate-export"}

    def test_missing_export_detected(self, tmp_path):
        name = "check_registry_fixture_missing"
        body = """
            def listed():
                pass

            def forgotten():
                pass

            def _private():
                pass
        """
        _fake_module(name, body, tmp_path, ["listed"])
        try:
            findings = _audit_exports(name)
        finally:
            del sys.modules[name]
        assert _rules(findings) == {"registry/missing-export"}
        assert "forgotten" in findings[0].message
        assert all("_private" not in f.message for f in findings)

    def test_unimportable_module_detected(self):
        findings = _audit_exports("repro.definitely_not_a_module")
        assert _rules(findings) == {"registry/import"}

    def test_module_without_all_is_skipped(self, tmp_path):
        name = "check_registry_fixture_noall"
        path = tmp_path / f"{name}.py"
        path.write_text("def anything():\n    pass\n", encoding="utf-8")
        module = types.ModuleType(name)
        module.__file__ = str(path)
        exec("def anything():\n    pass\n", module.__dict__)
        sys.modules[name] = module
        try:
            assert _audit_exports(name) == []
        finally:
            del sys.modules[name]

    def test_explicit_module_list_restricts_audit(self):
        findings, examined = check_registry(modules=["repro.core"])
        assert findings == []
        assert examined == 1
