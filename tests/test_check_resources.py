"""Tests for the resource-discipline lint (repro.check.resources)."""

import textwrap

from repro.check.resources import check_resources, scan_source


def _scan(body: str):
    return scan_source(textwrap.dedent(body))


def _rules(findings):
    return {f.rule for f in findings}


class TestRepoIsClean:
    def test_durable_io_surface_passes(self):
        findings, examined = check_resources()
        assert findings == []
        assert examined == 4  # trace/io, trace/stream, trace/cache, obs/ledger


class TestUnmanagedHandles:
    def test_bare_open_unrolled_from_with(self):
        # The canonical mutation: take `with open(...) as f:` and
        # unroll it to a bare assignment with no close.
        findings = _scan("""
            def read(path):
                stream = open(path, "rb")
                return stream.read()
        """)
        assert _rules(findings) == {"res/unmanaged-handle"}

    def test_with_managed_open_is_fine(self):
        findings = _scan("""
            def read(path):
                with open(path, "rb") as stream:
                    return stream.read()
        """)
        assert findings == []

    def test_unbound_open_result(self):
        findings = _scan("""
            def read(path):
                return open(path, "rb").read()
        """)
        assert _rules(findings) == {"res/unmanaged-handle"}

    def test_local_close_is_fine(self):
        findings = _scan("""
            def read(path):
                stream = open(path, "rb")
                try:
                    return stream.read()
                finally:
                    stream.close()
        """)
        assert findings == []

    def test_returned_handle_transfers_ownership(self):
        findings = _scan("""
            def acquire(path):
                stream = open(path, "rb")
                return stream
        """)
        assert findings == []

    def test_later_with_entry_is_fine(self):
        findings = _scan("""
            def read(path):
                stream = open(path, "rb")
                with stream:
                    return stream.read()
        """)
        assert findings == []

    def test_self_attribute_without_class_close(self):
        findings = _scan("""
            class Writer:
                def __init__(self, path):
                    self._file = open(path, "wb")
        """)
        assert "res/unmanaged-handle" in _rules(findings)

    def test_self_attribute_with_class_close_is_fine(self):
        findings = _scan("""
            import os

            class Writer:
                def __init__(self, path):
                    self._tmp = path
                    self._file = self._tmp.open("wb")

                def close(self):
                    self._file.flush()
                    os.fsync(self._file.fileno())
                    self._file.close()
                    os.replace(self._tmp, self._path)
        """)
        assert findings == []

    def test_mmap_is_a_handle_too(self):
        findings = _scan("""
            import mmap

            def view(stream):
                buf = mmap.mmap(stream.fileno(), 0)
                return buf[:16]
        """)
        assert _rules(findings) == {"res/unmanaged-handle"}


class TestAtomicWrites:
    def test_write_text_without_replace(self):
        findings = _scan("""
            def save(path, text):
                path.write_text(text)
        """)
        assert _rules(findings) == {"res/non-atomic-write"}

    def test_open_for_write_without_replace(self):
        findings = _scan("""
            def save(path, text):
                with open(path, "w") as stream:
                    stream.write(text)
        """)
        assert _rules(findings) == {"res/non-atomic-write"}

    def test_tmp_sibling_then_replace_with_fsync_is_fine(self):
        findings = _scan("""
            import os

            def save(path, text):
                tmp = path.with_suffix(".tmp")
                with tmp.open("w") as stream:
                    stream.write(text)
                    stream.flush()
                    os.fsync(stream.fileno())
                os.replace(tmp, path)
        """)
        assert findings == []

    def test_read_only_function_is_exempt(self):
        findings = _scan("""
            def load(path):
                with open(path, "r") as stream:
                    return stream.read()
        """)
        assert findings == []


class TestFsyncDiscipline:
    def test_replace_without_fsync(self):
        # The true-positive shape fixed in save_trace/save_source/store:
        # tmp + rename, but nothing forces the bytes to disk first.
        findings = _scan("""
            import os

            def save(path, text):
                tmp = path.with_suffix(".tmp")
                with tmp.open("w") as stream:
                    stream.write(text)
                os.replace(tmp, path)
        """)
        assert _rules(findings) == {"res/replace-without-fsync"}

    def test_path_replace_counts_as_publish(self):
        findings = _scan("""
            def save(path, text):
                tmp = path.with_suffix(".tmp")
                tmp.write_text(text)
                tmp.replace(path)
        """)
        assert _rules(findings) == {"res/replace-without-fsync"}

    def test_append_without_fsync(self):
        findings = _scan("""
            def append(path, line):
                with open(path, "a") as stream:
                    stream.write(line)
        """)
        assert _rules(findings) == {"res/append-without-fsync"}

    def test_append_with_fsync_is_fine(self):
        findings = _scan("""
            import os

            def append(path, line):
                with open(path, "a") as stream:
                    stream.write(line)
                    stream.flush()
                    os.fsync(stream.fileno())
        """)
        assert findings == []


class TestPragmas:
    def test_allow_pragma_suppresses(self):
        findings = _scan("""
            def save(path, text):
                path.write_text(text)  # check: allow(res/non-atomic-write)
        """)
        assert findings == []

    def test_findings_carry_location(self):
        findings = scan_source(
            "def save(path, text):\n    path.write_text(text)\n",
            filename="module.py",
        )
        assert findings[0].location == "module.py:2"
