"""Tests for the repro-trace and repro-sim command-line tools."""

import pytest

from repro.sim.cli import main as sim_main
from repro.trace.cli import main as trace_main
from repro.trace.io import load_trace


@pytest.fixture()
def isa_trace(tmp_path):
    path = tmp_path / "loop.btb"
    code = trace_main(["gen-isa", "counting_loop", str(path), "--param", "iterations=40"])
    assert code == 0
    return path


class TestTraceCLI:
    def test_gen_isa_and_stats(self, isa_trace, capsys):
        assert trace_main(["stats", str(isa_trace)]) == 0
        out = capsys.readouterr().out
        assert "dynamic branches" in out
        assert "taken rate" in out

    def test_gen_workload(self, tmp_path, capsys):
        path = tmp_path / "t.btb"
        assert trace_main(["gen", "tomcatv", str(path)]) == 0
        trace = load_trace(path)
        assert trace.meta.name == "tomcatv"
        assert len(trace) > 1000

    def test_head(self, isa_trace, capsys):
        assert trace_main(["head", str(isa_trace), "--count", "5"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5
        assert "cond" in lines[0]

    def test_convert_round_trip(self, isa_trace, tmp_path, capsys):
        text_path = tmp_path / "loop.btr"
        assert trace_main(["convert", str(isa_trace), str(text_path)]) == 0
        original = load_trace(isa_trace)
        converted = load_trace(text_path)
        assert list(original.iter_tuples()) == list(converted.iter_tuples())

    def test_gen_isa_bad_param(self, tmp_path, capsys):
        path = tmp_path / "x.btb"
        code = trace_main(["gen-isa", "counting_loop", str(path), "--param", "oops"])
        assert code == 2

    def test_gen_synth_and_inspect(self, tmp_path, capsys):
        path = tmp_path / "m.btrs"
        assert trace_main([
            "gen-synth", "markov", str(path), "--count", "5000", "--seed", "3",
        ]) == 0
        capsys.readouterr()
        assert trace_main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "BTRS streamed container" in out
        assert "5000" in out
        assert "synth-markov" in out

    def test_gen_synth_periodic_pattern(self, tmp_path, capsys):
        path = tmp_path / "p.btrs"
        assert trace_main([
            "gen-synth", "periodic", str(path), "--count", "100",
            "--pattern", "TTNT",
        ]) == 0
        trace = load_trace(path)
        outcomes = [taken for (_pc, taken, *_rest) in trace.iter_tuples()]
        assert outcomes[:8] == [True, True, False, True] * 2

    def test_gen_synth_bad_pattern(self, tmp_path):
        path = tmp_path / "p.btrs"
        code = trace_main([
            "gen-synth", "periodic", str(path), "--count", "10",
            "--pattern", "TXN",
        ])
        assert code == 2

    def test_stats_and_head_on_btrs(self, isa_trace, tmp_path, capsys):
        streamed = tmp_path / "loop.btrs"
        assert trace_main(["convert", str(isa_trace), str(streamed)]) == 0
        capsys.readouterr()
        assert trace_main(["stats", str(streamed)]) == 0
        assert "dynamic branches" in capsys.readouterr().out
        assert trace_main(["head", str(streamed), "--count", "3"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 3

    def test_convert_btrs_round_trip(self, isa_trace, tmp_path, capsys):
        streamed = tmp_path / "loop.btrs"
        back = tmp_path / "back.btb"
        assert trace_main(["convert", str(isa_trace), str(streamed)]) == 0
        assert trace_main(["convert", str(streamed), str(back)]) == 0
        original = load_trace(isa_trace)
        round_tripped = load_trace(back)
        assert list(original.iter_tuples()) == list(round_tripped.iter_tuples())


class TestSimCLI:
    def test_run(self, isa_trace, capsys):
        assert sim_main(["run", "pag-8", str(isa_trace)]) == 0
        out = capsys.readouterr().out
        assert "%" in out

    def test_run_table3_string(self, isa_trace, capsys):
        assert sim_main(["run", "GAg(HR(1,,8-sr),1xPHT(2^8,A2),)", str(isa_trace)]) == 0

    def test_run_with_context_switches(self, isa_trace, capsys):
        assert sim_main([
            "run", "pag-8", str(isa_trace),
            "--context-switches", "--switch-interval", "20",
        ]) == 0
        assert "context switches" in capsys.readouterr().out

    def test_compare_sorted_by_accuracy(self, tmp_path, capsys):
        path = tmp_path / "matmul.btb"
        assert trace_main(["gen-isa", "matmul", str(path), "--param", "n=4"]) == 0
        capsys.readouterr()
        assert sim_main(["compare", "always-taken", "pag-8", str(path)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        # Short trip-4 loops: pattern history wins decisively.
        assert "pag-8" in lines[0]

    def test_profile_requires_training(self, isa_trace, tmp_path):
        from repro.core.naming import SchemeParseError

        with pytest.raises(SchemeParseError):
            sim_main(["run", "profile", str(isa_trace)])

    def test_profile_with_training(self, isa_trace, capsys):
        assert sim_main([
            "run", "profile", str(isa_trace), "--training", str(isa_trace)
        ]) == 0

    def test_run_btrs_with_block_size(self, isa_trace, tmp_path, capsys):
        streamed = tmp_path / "loop.btrs"
        assert trace_main(["convert", str(isa_trace), str(streamed)]) == 0
        capsys.readouterr()
        assert sim_main(["run", "pag-8", str(isa_trace)]) == 0
        materialized_out = capsys.readouterr().out
        assert sim_main([
            "run", "pag-8", str(streamed), "--block-size", "64",
        ]) == 0
        streamed_out = capsys.readouterr().out
        assert streamed_out == materialized_out

    def test_compare_with_block_size(self, isa_trace, capsys):
        assert sim_main([
            "compare", "always-taken", "pag-8", str(isa_trace),
            "--block-size", "32",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2

    def test_report(self, isa_trace, capsys):
        assert sim_main(["report", "pag-8", str(isa_trace), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "cold" in out
        assert "worst 2 static branches" in out
        assert "Interference report" in out
