"""Tests for the mini-C -> M88K compiler (differential vs reference)."""

import random

import pytest

from repro.core.twolevel import make_pag
from repro.isa.compiler import (
    CompileError,
    MiniCCompiler,
    compile_and_run,
    compile_source,
    reference_eval,
    trunc_div,
    trunc_rem,
)
from repro.sim.engine import simulate
from repro.trace.events import BranchClass
from repro.workloads.gcc_like import generate_source


class TestArithmeticSemantics:
    def test_trunc_div_matches_cpu(self):
        assert trunc_div(7, 2) == 3
        assert trunc_div(-7, 2) == -3  # truncating, not floor
        assert trunc_div(7, -2) == -3
        assert trunc_div(5, 0) == 0  # the language's /0 rule

    def test_trunc_rem(self):
        assert trunc_rem(10, 3) == 1
        assert trunc_rem(-10, 3) == -1
        assert trunc_rem(10, 0) == 10  # consistent with trunc_div(·,0)=0


class TestBasicPrograms:
    def test_constant_return(self):
        result, _state, _trace = compile_and_run("int fn0() { return 42; }")
        assert result == 42

    def test_arguments(self):
        source = "int fn0(int p0, int p1) { return p0 - p1; }"
        result, _s, _t = compile_and_run(source, args=[30, 12])
        assert result == 18

    def test_locals_and_assignment(self):
        source = """
        int fn0() {
          var x = 5;
          var y = (x * 3);
          x = (y - 1);
          return x;
        }
        """
        assert compile_and_run(source)[0] == 14

    def test_if_else(self):
        source = """
        int fn0(int p0) {
          if (p0 < 10) { return 1; } else { return 2; }
        }
        """
        assert compile_and_run(source, args=[5])[0] == 1
        assert compile_and_run(source, args=[15])[0] == 2

    def test_while_loop(self):
        source = """
        int fn0(int p0) {
          var acc = 0;
          var i = 0;
          while (i < p0) { acc = acc + i; i = i + 1; }
          return acc;
        }
        """
        assert compile_and_run(source, args=[100])[0] == 4950

    def test_comparison_results_are_01(self):
        source = "int fn0(int p0) { return ((p0 > 3) + ((p0 == 7) * 10)); }"
        assert compile_and_run(source, args=[7])[0] == 11
        assert compile_and_run(source, args=[2])[0] == 0

    def test_division_by_zero_yields_zero(self):
        source = "int fn0(int p0) { return (10 / p0); }"
        assert compile_and_run(source, args=[0])[0] == 0
        assert compile_and_run(source, args=[3])[0] == 3

    def test_bitwise_ops(self):
        source = "int fn0() { return ((12 & 10) | 1); }"
        assert compile_and_run(source)[0] == 9

    def test_missing_return_yields_zero(self):
        assert compile_and_run("int fn0() { var x = 9; }")[0] == 0


class TestCallsAndRecursion:
    def test_cross_function_call(self):
        source = """
        int fn0(int p0) { return (fn1(p0) + 1); }
        int fn1(int p0) { return (p0 * 2); }
        """
        assert compile_and_run(source, args=[21])[0] == 43

    def test_recursion(self):
        source = """
        int fn0(int p0) {
          if (p0 < 2) { return p0; }
          return (fn0((p0 - 1)) + fn0((p0 - 2)));
        }
        """
        assert compile_and_run(source, args=[12])[0] == 144  # fib

    def test_caller_saved_temps_survive_calls(self):
        # The left operand is live across the call on the right.
        source = """
        int fn0(int p0) { return ((p0 * 100) + fn1(p0)); }
        int fn1(int p0) { return (p0 + 1); }
        """
        assert compile_and_run(source, args=[7])[0] == 708

    def test_intrinsics(self):
        source = "int fn0(int p0) { return __b7(p0, 100); }"
        assert compile_and_run(source, args=[150])[0] == (150 + 100 + 7) % 257


class TestDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_generated_units_match_reference(self, seed):
        source = generate_source(random.Random(seed), functions=2, statements=5)
        compiled, _state, _trace = compile_and_run(source, entry="fn0")
        assert compiled == reference_eval(source, entry="fn0")

    def test_reference_rejects_unknown_entry(self):
        with pytest.raises(CompileError):
            reference_eval("int fn0() { return 1; }", entry="fn9")


class TestCompilerErrors:
    def test_undeclared_variable(self):
        with pytest.raises(CompileError, match="undeclared"):
            compile_source("int fn0() { return zzz; }")

    def test_empty_unit(self):
        with pytest.raises(CompileError, match="no functions"):
            MiniCCompiler().compile_unit("")

    def test_too_many_call_args(self):
        with pytest.raises(CompileError):
            compile_and_run("int fn0() { return 1; }", args=[1, 2, 3, 4])


class TestCompiledTraces:
    def test_trace_has_calls_and_returns(self):
        source = """
        int fn0(int p0) {
          if (p0 < 2) { return p0; }
          return (fn0((p0 - 1)) + fn0((p0 - 2)));
        }
        """
        _result, _state, trace = compile_and_run(source, args=[10])
        classes = [r.branch_class for r in trace]
        assert classes.count(BranchClass.CALL) > 100
        assert classes.count(BranchClass.CALL) == classes.count(BranchClass.RETURN)

    def test_compiled_loop_predictable_by_two_level(self):
        source = """
        int fn0(int p0) {
          var acc = 0;
          var i = 0;
          while (i < p0) {
            if ((i & 3) == 0) { acc = acc + 2; } else { acc = acc + 1; }
            i = i + 1;
          }
          return acc;
        }
        """
        result, _state, trace = compile_and_run(source, args=[400])
        assert result == 400 + 100  # 2s on every fourth iteration
        accuracy = simulate(make_pag(10), trace.conditional_only()).accuracy
        # The (i & 3) == 0 branch is period-4: pattern history nails it.
        assert accuracy > 0.95
