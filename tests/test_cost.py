"""Tests for the hardware cost model (paper Equations 3-6)."""

import pytest

from repro.core.cost import (
    TRANSISTOR_COSTS,
    UNIT_COSTS,
    CostParams,
    cost_gag,
    cost_pag,
    cost_pap,
    cost_two_level,
    storage_bits,
)


class TestEquation4GAg:
    def test_closed_form(self):
        # (k+1)*C_s + k*C_sh + 2^k*(s*C_s + C_d) with unit constants.
        k, s = 8, 2
        expected = (k + 1) + k + (1 << k) * (s + 1)
        assert cost_gag(k, s) == expected

    def test_exponential_growth_in_k(self):
        # Doubling ratio approaches 2 as the PHT dominates.
        ratio = cost_gag(17) / cost_gag(16)
        assert 1.9 < ratio < 2.1

    def test_last_time_cheaper_than_a2(self):
        assert cost_gag(10, pattern_entry_bits=1) < cost_gag(10, pattern_entry_bits=2)


class TestEquation5PAg:
    def test_linear_in_bht_size(self):
        small = cost_pag(256, 4, 12)
        large = cost_pag(512, 4, 12)
        pht_part = (1 << 12) * (2 + 1)
        # The BHT part should roughly double (the -i term shifts by 1).
        assert (large - pht_part) / (small - pht_part) == pytest.approx(2.0, rel=0.05)

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            cost_pag(300, 4, 12)
        with pytest.raises(ValueError):
            cost_pag(512, 3, 12)


class TestEquation6PAp:
    def test_pattern_tables_dominate(self):
        # PAp carries h pattern tables; for h=512, k=6 the PHT part is
        # 512 x 64 x 3 = 98304 of the total.
        total = cost_pap(512, 4, 6)
        pht_part = 512 * (1 << 6) * (2 + 1)
        assert pht_part / total > 0.7

    def test_pap_equals_pag_plus_extra_tables(self):
        pag = cost_pag(512, 4, 6)
        pap = cost_pap(512, 4, 6)
        extra = 511 * (1 << 6) * (2 + 1)
        assert pap == pytest.approx(pag + extra)


class TestPaperFigure8Ordering:
    """At iso-accuracy — GAg(18), PAg(12), PAp(6) — PAg is cheapest."""

    def test_ordering_with_unit_costs(self):
        gag = cost_gag(18)
        pag = cost_pag(512, 4, 12)
        pap = cost_pap(512, 4, 6)
        assert pag < gag
        assert pag < pap

    def test_ordering_with_transistor_costs(self):
        gag = cost_gag(18, params=TRANSISTOR_COSTS)
        pag = cost_pag(512, 4, 12, params=TRANSISTOR_COSTS)
        pap = cost_pap(512, 4, 6, params=TRANSISTOR_COSTS)
        assert pag < gag
        assert pag < pap

    def test_ordering_robust_to_scaling(self):
        params = UNIT_COSTS.scaled(7.5)
        assert cost_pag(512, 4, 12, params=params) < cost_gag(18, params=params)


class TestEquation3Full:
    def test_gag_special_case_close_to_equation4(self):
        # h=1 collapses to the simplified GAg form up to the small
        # state-updater term the paper drops.
        full = cost_two_level(1, 1, 10).total
        simplified = cost_gag(10)
        assert abs(full - simplified) <= 2 * (1 << (2 + 1)) * 2

    def test_breakdown_sums(self):
        breakdown = cost_two_level(512, 4, 12, pattern_tables=1)
        assert breakdown.total == breakdown.bht_total + breakdown.pht_total

    def test_pattern_table_multiplier(self):
        one = cost_two_level(512, 4, 6, pattern_tables=1)
        many = cost_two_level(512, 4, 6, pattern_tables=512)
        assert many.pht_total == 512 * (one.pht_total)
        assert many.bht_total == one.bht_total

    def test_tag_width_shrinks_with_bigger_table(self):
        # More index bits -> smaller tags -> storage grows sublinearly.
        small = cost_two_level(256, 1, 8).bht_storage
        large = cost_two_level(512, 1, 8).bht_storage
        assert large < 2 * small

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            cost_two_level(0, 1, 8)
        with pytest.raises(ValueError):
            cost_two_level(512, 4, 0)

    def test_address_width_guard(self):
        params = CostParams(address_bits=4)
        with pytest.raises(ValueError):
            cost_two_level(512, 1, 8, params=params)


class TestStorageBits:
    def test_gag_storage(self):
        # Single k+1-bit register plus 2^k * s pattern bits.
        assert storage_bits(1, 1, 12) == 13 + (1 << 12) * 2

    def test_pap_storage_scales_with_tables(self):
        single = storage_bits(512, 4, 6, pattern_tables=1)
        full = storage_bits(512, 4, 6, pattern_tables=512)
        assert full - single == 511 * (1 << 6) * 2

    def test_paper_pag_config_is_kilobytes_not_megabytes(self):
        bits = storage_bits(512, 4, 12, pattern_tables=1)
        assert bits / 8 / 1024 < 8  # the paper's sweet spot is small
