"""Cross-subsystem end-to-end flows."""

import pytest

from repro.core.twolevel import make_pag
from repro.predictors.registry import make_predictor
from repro.sim.engine import ContextSwitchConfig, simulate
from repro.trace.io import load_trace, save_trace
from repro.workloads.suite import get_workload


class TestPersistedTraceEquivalence:
    def test_simulation_identical_after_disk_round_trip(self, tmp_path):
        trace = get_workload("tomcatv").generate("testing")
        path = tmp_path / "tomcatv.btb"
        save_trace(trace, path)
        restored = load_trace(path)
        direct = simulate(make_pag(10), trace)
        replayed = simulate(make_pag(10), restored)
        assert direct.correct_predictions == replayed.correct_predictions
        assert direct.conditional_branches == replayed.conditional_branches

    def test_context_switches_identical_after_round_trip(self, tmp_path):
        trace = get_workload("eqntott").generate("testing")
        path = tmp_path / "eqntott.btr"  # text format on purpose
        save_trace(trace, path)
        restored = load_trace(path)
        config = ContextSwitchConfig(interval=100_000)
        direct = simulate(make_pag(10), trace, context_switches=config)
        replayed = simulate(make_pag(10), restored, context_switches=config)
        assert direct.correct_predictions == replayed.correct_predictions
        assert direct.context_switches == replayed.context_switches


class TestCompilerToPredictionFlow:
    def test_minic_trace_through_registry_predictor(self):
        from repro.isa.compiler import compile_and_run

        source = """
        int fn0(int p0) {
          var i = 0;
          var acc = 0;
          while (i < p0) {
            if ((i & 7) == 0) { acc = acc + 3; } else { acc = acc + 1; }
            i = i + 1;
          }
          return acc;
        }
        """
        result, _state, trace = compile_and_run(source, args=[800])
        assert result == 800 + 2 * 100
        conditional = trace.conditional_only()
        # The period-8 pattern needs >= 8 history bits; show the knee.
        shallow = simulate(make_predictor("gag-4"), conditional).accuracy
        deep = simulate(make_predictor("gag-14"), conditional).accuracy
        assert deep > shallow

    def test_isa_and_workload_matmul_agree_qualitatively(self):
        from repro.isa.programs import program_trace

        _state, isa_trace = program_trace("matmul", n=12)
        workload_trace = get_workload("matrix300").generate("testing")
        isa_accuracy = simulate(make_pag(10), isa_trace.conditional_only()).accuracy
        workload_accuracy = simulate(make_pag(10), workload_trace).accuracy
        # Same algorithm, two trace producers: both high, same regime.
        assert isa_accuracy > 0.9
        assert workload_accuracy > 0.9


class TestTransformsWithEngine:
    def test_warm_trace_scores_higher_than_cold(self):
        from repro.trace.transforms import skip_warmup

        trace = get_workload("espresso").generate("testing")
        full = simulate(make_pag(12), trace).accuracy
        warm = simulate(make_pag(12), skip_warmup(trace, 20_000)).accuracy
        # Steady state is easier than the cold prefix... for this
        # benchmark; the assertion is deliberately loose (phases vary).
        assert warm > full - 0.02

    def test_filtered_sites_simulate_cleanly(self):
        from repro.trace.transforms import filter_sites

        trace = get_workload("li").generate("testing")
        hot_sites = trace.static_branch_sites()[:3]
        sliced = filter_sites(trace, hot_sites)
        result = simulate(make_pag(8), sliced)
        assert result.conditional_branches == sliced.num_conditional()
        assert result.total_instructions == sliced.meta.total_instructions
