"""Tests for the figure/table drivers and report rendering.

Figure drivers run on a two-benchmark subset for speed; the full-suite
shape claims live in test_integration.py.
"""

import pytest

from repro.experiments.cli import main as cli_main, run_experiment
from repro.experiments.figures import (
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
)
from repro.experiments.report import format_cell, render_accuracy_matrix, render_table
from repro.experiments.tables import table1, table2, table3
from repro.sim.results import ResultMatrix, SimulationResult


class TestReportRendering:
    def test_format_cell(self):
        assert format_cell(None) == "--"
        assert format_cell(0.9712, percent=True) == "97.12"
        assert format_cell("PAg") == "PAg"
        assert format_cell(12) == "12"

    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert len(set(len(line) for line in lines[2:])) <= 2

    def test_render_accuracy_matrix_marks_missing(self):
        matrix = ResultMatrix(benchmarks=["a", "b"], categories={"a": "int", "b": "fp"})
        matrix.add("s", SimulationResult("s", "a", "", 100, 90))
        text = render_accuracy_matrix(matrix)
        assert "90.00" in text
        assert "--" in text


class TestTables:
    def test_table1_rows(self, small_cases):
        result = table1(cases=small_cases)
        assert len(result.rows) == 2
        assert result.rows[0][0] == "eqntott"
        assert isinstance(result.rows[0][1], int)
        assert result.rows[0][2] == 277  # paper reference column
        assert "Table 1" in result.render()

    def test_table2_includes_na(self):
        result = table2()
        rendered = result.render()
        assert "NA" in rendered
        assert "eight queens" in rendered

    def test_table3_row_count_and_render(self):
        result = table3()
        assert len(result.rows) == 15
        assert "PAg(BHT(512,4,12-sr),1xPHT(2^12,A2),)" in result.render()


class TestFigureDrivers:
    def test_figure4_mix(self, small_cases):
        result = figure4(cases=small_cases)
        mixes = result.extra["mixes"]
        assert set(mixes) == {"eqntott", "tomcatv"}
        for mix in mixes.values():
            assert 0.5 < mix.conditional <= 1.0

    def test_figure5_schemes(self, small_cases):
        result = figure5(cases=small_cases)
        assert len(result.matrix.schemes) == 5
        assert any("LT" in s for s in result.matrix.schemes)

    def test_figure6_lengths(self, small_cases):
        result = figure6(cases=small_cases, lengths=(2, 6))
        assert set(result.matrix.schemes) == {
            "GAg-2", "PAg-2", "PAp-2", "GAg-6", "PAg-6", "PAp-6",
        }

    def test_figure7_gain_recorded(self, small_cases):
        result = figure7(cases=small_cases, lengths=(4, 10))
        assert "gain" in result.extra
        assert result.extra["gain"] == (
            result.matrix.gmean("GAg-10") - result.matrix.gmean("GAg-4")
        )

    def test_figure8_costs(self, small_cases):
        result = figure8(cases=small_cases)
        costs = result.extra["costs"]
        assert costs["PAg-12"] < costs["GAg-18"]
        assert costs["PAg-12"] < costs["PAp-6"]

    def test_figure9_degradation_keys(self, small_cases):
        result = figure9(cases=small_cases)
        assert set(result.extra["degradation"]) == {"GAg-18", "PAg-12", "PAp-6"}

    def test_figure10_configs(self, small_cases):
        result = figure10(cases=small_cases)
        assert set(result.matrix.schemes) == {
            "PAg-IBHT", "PAg-512x4", "PAg-512x1", "PAg-256x4", "PAg-256x1",
        }

    def test_figure11_skips_training_free_benchmarks(self, small_cases):
        result = figure11(cases=small_cases)
        # eqntott has no training set: profiled schemes leave it blank.
        assert result.matrix.accuracy("Profile", "eqntott") is None
        assert result.matrix.accuracy("Profile", "tomcatv") is None  # also NA
        assert result.matrix.accuracy("PAg(512,4,12,A2)", "eqntott") is not None


class TestCLI:
    def test_run_experiment_by_id(self, small_cases):
        result = run_experiment("fig4", cases=small_cases)
        assert result.figure_id == "fig4"
        result = run_experiment("table3")
        assert result.table_id == "table3"

    def test_run_experiment_unknown(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_cli_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out
        assert "table1" in out

    def test_cli_unknown_experiment(self, capsys):
        assert cli_main(["fig99"]) == 2

    def test_cli_traceless_table_runs_and_writes(self, tmp_path, capsys):
        assert cli_main(["table3", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table3.txt").exists()


class TestChartsInFigures:
    def test_fig7_contains_sparkline(self, small_cases):
        result = figure7(cases=small_cases, lengths=(4, 8, 12))
        assert "Accuracy vs history bits" in result.rendered
        assert "->" in result.rendered

    def test_fig11_contains_bars(self, small_cases):
        result = figure11(cases=small_cases)
        assert "Tot GMean by scheme" in result.rendered
        assert "█" in result.rendered


class TestRowsFromMapping:
    def test_nested_mapping_flattens(self):
        from repro.experiments.report import rows_from_mapping

        table = rows_from_mapping(
            {"x": {"a": 1, "b": 2}, "y": {"b": 3, "c": 4}},
            key_header="item",
        )
        assert table["headers"] == ["item", "a", "b", "c"]
        assert table["rows"][0] == ["x", 1, 2, None]
        assert table["rows"][1] == ["y", None, 3, 4]
