"""Tests for the extension experiments and result export."""

import json

import pytest

from repro.experiments.cli import run_experiment
from repro.experiments.export import (
    export_result,
    load_matrix_json,
    matrix_to_csv,
    matrix_to_json,
)
from repro.experiments.extras import (
    extra_characterize,
    extra_fetch,
    extra_interference,
    extra_speculative,
    extra_taxonomy,
)
from repro.sim.results import ResultMatrix, SimulationResult


class TestExtraDrivers:
    def test_speculative_recovers(self, small_cases):
        result = extra_speculative(cases=small_cases, latency=6, history_bits=10)
        for name, row in result.extra["rows"].items():
            assert row["stale"] <= row["immediate"], name
            assert row["repair"] >= row["stale"], name
        assert "speculative" in result.rendered.lower()

    def test_fetch_btac_always_helps(self, small_cases):
        result = extra_fetch(cases=small_cases)
        for name, row in result.extra["rows"].items():
            assert row["cpi_with"] <= row["cpi_without"], name

    def test_interference_rows_present(self, small_cases):
        result = extra_interference(cases=small_cases)
        assert set(result.extra["rows"]) == {c.name for c in small_cases}
        for row in result.extra["rows"].values():
            assert 0 <= row["pollution"] <= 1
            assert 0 <= row["destructive"] <= 1

    def test_taxonomy_matrix_and_costs(self, small_cases):
        result = extra_taxonomy(cases=small_cases, history_bits=6)
        assert result.matrix is not None
        costs = result.extra["costs"]
        assert costs["GAg-6"] < costs["SAs-6x16"]
        assert costs["SAg-6x16"] < costs["PAg-6"]

    def test_characterize_reports_per_benchmark(self, small_cases):
        result = extra_characterize(
            cases=small_cases, max_k=4, schemes=("gag-8", "pag-8")
        )
        reports = result.extra["reports"]
        assert set(reports) == {"eqntott", "tomcatv"}
        for name, payload in reports.items():
            assert payload["schema"] == "repro.analysis.char/1", name
            assert payload["max_k"] == 4
            assert [s["scheme"] for s in payload["schemes"]] == ["gag-8", "pag-8"]
        assert "characterization" in result.rendered

    def test_run_experiment_dispatches_extras(self, small_cases):
        result = run_experiment("extra-interference", cases=small_cases)
        assert result.figure_id == "extra-interference"


def _matrix():
    matrix = ResultMatrix(
        benchmarks=["a", "b"], categories={"a": "int", "b": "fp"}
    )
    matrix.add("s1", SimulationResult("s1", "a", "", 100, 90))
    matrix.add("s1", SimulationResult("s1", "b", "", 100, 99))
    matrix.add("s2", SimulationResult("s2", "a", "", 100, 80))
    return matrix


class TestExport:
    def test_csv_layout(self):
        text = matrix_to_csv(_matrix())
        lines = text.strip().splitlines()
        assert lines[0] == "scheme,a,b,Int GMean,FP GMean,Tot GMean"
        assert lines[1].startswith("s1,0.9,0.99")
        # s2 has no 'b' cell: empty field.
        assert ",," in lines[2] or lines[2].split(",")[2] == ""

    def test_json_round_trip(self, tmp_path):
        text = matrix_to_json(_matrix())
        payload = json.loads(text)
        assert payload["benchmarks"] == ["a", "b"]
        assert payload["schemes"]["s1"]["cells"]["a"]["accuracy"] == 0.9
        assert "Tot GMean" in payload["schemes"]["s1"]["summary"]
        path = tmp_path / "m.json"
        path.write_text(text)
        assert load_matrix_json(path) == payload

    def test_export_result_writes_all_formats(self, tmp_path, small_cases):
        from repro.experiments.figures import figure5

        result = figure5(cases=small_cases)
        written = export_result(result, tmp_path)
        names = {path.name for path in written}
        assert names == {"fig5.txt", "fig5.csv", "fig5.json"}
        assert (tmp_path / "fig5.csv").read_text().startswith("scheme,")

    def test_export_table_txt_only(self, tmp_path):
        from repro.experiments.tables import table3

        written = export_result(table3(), tmp_path)
        assert [path.name for path in written] == ["table3.txt"]


class TestSensitivityDriver:
    def test_rows_cover_shiftable_benchmarks(self):
        from repro.experiments.extras import extra_sensitivity

        result = extra_sensitivity(history_bits=8)
        rows = result.extra["rows"]
        # Exactly the benchmarks with a training set AND an alternate.
        assert set(rows) == {"espresso", "gcc", "li", "doduc"}
        for name, by_input in rows.items():
            assert "testing" in by_input
            assert len(by_input) >= 2
            for values in by_input.values():
                assert 0 < values["pag"] <= 1


class TestIPCDriver:
    def test_speedups_positive_and_two_level_wins_overall(self, small_cases):
        from repro.experiments.extras import extra_ipc

        result = extra_ipc(cases=small_cases)
        rows = result.extra["rows"]
        assert set(rows) == {c.name for c in small_cases}
        # On the hard integer benchmark the two-level IPC gain is real.
        assert rows["eqntott"]["pag_ipc"] > rows["eqntott"]["btb_ipc"] * 1.2
