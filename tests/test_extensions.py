"""Tests for the post-paper predictors (gselect, tournament)."""

import pytest

from repro.core.twolevel import GsharePredictor, make_gag, make_pag
from repro.predictors.extensions import (
    GselectPredictor,
    TournamentPredictor,
    tournament_pag_gshare,
)
from repro.predictors.static import AlwaysNotTaken, AlwaysTaken
from repro.sim.engine import simulate
from repro.trace import synthetic
from repro.trace.events import TraceBuilder


class TestGselect:
    def test_index_concatenates(self):
        gselect = GselectPredictor(history_bits=4, address_bits=3)
        gselect.ghr = 0b1010
        assert gselect._index(0b101) == (0b101 << 4) | 0b1010

    def test_separates_branches_with_same_history(self):
        # A always taken, B always not taken, interleaved: a pure GAg
        # of the same total index width confuses them; gselect keys on
        # the address bits.
        builder = TraceBuilder()
        for _ in range(400):
            builder.conditional(0b0001, True)
            builder.conditional(0b0010, False)
        trace = builder.build()
        gselect = GselectPredictor(history_bits=2, address_bits=4)
        gag = make_gag(6)  # same 2^6 table budget
        assert simulate(gselect, trace).accuracy > simulate(gag, trace).accuracy

    def test_validation(self):
        with pytest.raises(ValueError):
            GselectPredictor(0, 4)
        with pytest.raises(ValueError):
            GselectPredictor(4, 0)

    def test_context_switch_resets_history(self):
        gselect = GselectPredictor(4, 4)
        gselect.update(0, False)
        gselect.on_context_switch()
        assert gselect.ghr == 0b1111

    def test_learns_global_correlation(self):
        trace = synthetic.correlated_pair_trace(8000, seed=5)
        accuracy = simulate(GselectPredictor(6, 6), trace).accuracy
        assert accuracy > 0.70


class TestTournament:
    def test_chooser_learns_better_component(self):
        # First component is always wrong, second always right.
        builder = TraceBuilder()
        for _ in range(100):
            builder.conditional(0xA, True)
        trace = builder.build()
        tournament = TournamentPredictor(AlwaysNotTaken(), AlwaysTaken())
        result = simulate(tournament, trace)
        # The chooser starts weakly on the first component; it needs a
        # couple of branches to swing over, then it is perfect.
        assert result.mispredictions <= 3

    def test_swings_back(self):
        builder = TraceBuilder()
        for _ in range(50):
            builder.conditional(0xA, True)  # favours AlwaysTaken
        for _ in range(50):
            builder.conditional(0xA, False)  # favours AlwaysNotTaken
        tournament = TournamentPredictor(AlwaysTaken(), AlwaysNotTaken())
        result = simulate(tournament, builder.build())
        assert result.accuracy > 0.9

    def test_per_branch_choosers(self):
        builder = TraceBuilder()
        for _ in range(200):
            builder.conditional(0xA, True)   # component 1 (AT) right here
            builder.conditional(0xB, False)  # component 2 (ANT) right here
        tournament = TournamentPredictor(AlwaysTaken(), AlwaysNotTaken())
        result = simulate(tournament, builder.build())
        assert result.accuracy > 0.95

    def test_disagreements_counted(self):
        builder = TraceBuilder()
        for _ in range(10):
            builder.conditional(0xA, True)
        tournament = TournamentPredictor(AlwaysTaken(), AlwaysNotTaken())
        simulate(tournament, builder.build())
        assert tournament.disagreements == 10

    def test_context_switch_propagates(self):
        tournament = tournament_pag_gshare()
        tournament.first.predict(0xA)
        tournament.first.update(0xA, True)
        tournament.on_context_switch()
        assert tournament.first.bht.peek(0xA) is None

    def test_never_worse_than_both_components_on_mixed_work(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(t) for t in (3, 5, 9)]
            + [synthetic.pattern_source([True, False])],
            length=30_000,
        )
        tournament = tournament_pag_gshare(10, 10, 10)
        combined = simulate(tournament, trace).accuracy
        pag = simulate(make_pag(10), trace).accuracy
        gshare = simulate(GsharePredictor(10), trace).accuracy
        assert combined >= min(pag, gshare) - 0.005

    def test_beats_pag_on_correlation_plus_locality(self):
        # Correlated pair (global wins) interleaved with private loops
        # (per-address wins): the tournament picks per-branch.
        pair = synthetic.correlated_pair_trace(6000, seed=2)
        loops = synthetic.interleaved(
            [synthetic.loop_source(4), synthetic.loop_source(6)], length=12_000
        )
        trace = synthetic.concat([pair, loops])
        tournament = tournament_pag_gshare(8, 10, 10)
        combined = simulate(tournament, trace).accuracy
        pag_only = simulate(make_pag(8), trace).accuracy
        assert combined > pag_only - 0.01
