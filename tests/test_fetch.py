"""Tests for the §3.2 fetch model (BTAC + RAS + bubble accounting)."""

import pytest

from repro.core.twolevel import make_pag
from repro.predictors.static import AlwaysTaken
from repro.sim.fetch import (
    BranchTargetCache,
    FetchEngine,
    ReturnAddressStack,
)
from repro.trace import synthetic
from repro.trace.events import TraceBuilder


class TestBranchTargetCache:
    def test_miss_then_hit(self):
        btac = BranchTargetCache(64, 2)
        assert btac.predict_target(0x100) is None
        btac.record(0x100, 0x500)
        assert btac.predict_target(0x100) == 0x500
        assert btac.hits == 1
        assert btac.lookups == 2

    def test_target_update(self):
        btac = BranchTargetCache(64, 2)
        btac.record(0x100, 0x500)
        btac.record(0x100, 0x900)  # indirect branch changed target
        assert btac.predict_target(0x100) == 0x900

    def test_flush(self):
        btac = BranchTargetCache(64, 2)
        btac.record(0x100, 0x500)
        btac.flush()
        assert btac.predict_target(0x100) is None

    def test_capacity_conflicts(self):
        btac = BranchTargetCache(4, 1)
        btac.record(0, 0xA)
        btac.record(4, 0xB)  # same set, evicts
        assert btac.predict_target(0) is None


class TestReturnAddressStack:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(4)
        ras.push(0x10)
        ras.push(0x20)
        assert ras.pop() == 0x20
        assert ras.pop() == 0x10

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


class TestFetchEngine:
    def _loop_trace(self):
        return synthetic.loop_trace(iterations=50, trip_count=10)

    def test_perfect_direction_no_btac_pays_taken_bubbles(self):
        trace = self._loop_trace()
        engine = FetchEngine(make_pag(8), btac=None, mispredict_penalty=5, taken_bubble=1)
        stats = engine.run(trace)
        # Every taken (correctly predicted) branch costs one bubble.
        assert stats.target_bubbles == stats.taken_transfers
        assert stats.penalty_cycles >= stats.taken_transfers

    def test_btac_removes_most_taken_bubbles(self):
        trace = self._loop_trace()
        without = FetchEngine(make_pag(8), btac=None).run(trace)
        with_btac = FetchEngine(make_pag(8), btac=BranchTargetCache()).run(trace)
        assert with_btac.target_bubbles < 0.1 * without.target_bubbles
        assert with_btac.cycles_per_instruction < without.cycles_per_instruction

    def test_mispredict_penalty_charged(self):
        builder = TraceBuilder()
        for outcome in (False, False, False, False):
            builder.conditional(0x1, outcome, work=3)
        engine = FetchEngine(AlwaysTaken(), btac=BranchTargetCache(), mispredict_penalty=7)
        stats = engine.run(builder.build())
        assert stats.mispredict_squashes == 4
        assert stats.penalty_cycles == 28

    def test_cpi_bounded_below_by_one(self):
        trace = self._loop_trace()
        stats = FetchEngine(make_pag(8), btac=BranchTargetCache()).run(trace)
        assert stats.cycles_per_instruction >= 1.0

    def test_ras_predicts_isa_returns(self):
        from repro.isa.programs import program_trace

        _state, trace = program_trace("sum_recursive", n=30)
        engine = FetchEngine(
            make_pag(8),
            btac=BranchTargetCache(),
            ras=ReturnAddressStack(64),
        )
        stats = engine.run(trace)
        assert stats.ras_returns == 31
        assert stats.ras_accuracy == 1.0

    def test_without_ras_returns_go_to_btac(self):
        from repro.isa.programs import program_trace

        _state, trace = program_trace("sum_recursive", n=30)
        stats = FetchEngine(make_pag(8), btac=BranchTargetCache(), ras=None).run(trace)
        assert stats.ras_return_hits == 0
        # All calls return to the same site, so the BTAC actually does
        # fine here; the point is the path is exercised.
        assert stats.taken_transfers > 0

    def test_direction_accuracy_reported(self):
        trace = self._loop_trace()
        stats = FetchEngine(make_pag(12), btac=BranchTargetCache()).run(trace)
        # trip-10 loop: a 12-bit history disambiguates the exit.
        assert stats.direction_accuracy > 0.95

    def test_penalty_validation(self):
        with pytest.raises(ValueError):
            FetchEngine(make_pag(4), mispredict_penalty=-1)

    def test_instruction_count_matches_trace(self):
        trace = self._loop_trace()
        stats = FetchEngine(make_pag(8)).run(trace)
        assert stats.instructions == trace.meta.total_instructions
