"""Unit tests for history registers and branch history tables."""

import pytest

from repro.core.history import (
    CacheBHT,
    IdealBHT,
    history_bits_string,
    history_fill,
    history_mask,
    history_update,
    make_bht,
)


class TestHistoryRegisterOps:
    def test_mask(self):
        assert history_mask(1) == 0b1
        assert history_mask(4) == 0b1111
        assert history_mask(12) == 0xFFF

    def test_mask_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            history_mask(0)

    def test_update_shifts_into_lsb(self):
        # The paper: R_c enters the least significant position.
        value = 0b0000
        value = history_update(value, True, 4)
        assert value == 0b0001
        value = history_update(value, False, 4)
        assert value == 0b0010
        value = history_update(value, True, 4)
        assert value == 0b0101

    def test_update_drops_oldest_bit(self):
        value = 0b1111
        assert history_update(value, False, 4) == 0b1110

    def test_fill_extends_outcome(self):
        assert history_fill(True, 6) == 0b111111
        assert history_fill(False, 6) == 0

    def test_bits_string_matches_paper_notation(self):
        assert history_bits_string(0b11100101, 8) == "11100101"
        assert history_bits_string(0b1, 4) == "0001"


class TestIdealBHT:
    def test_allocates_on_first_access(self):
        bht = IdealBHT(init_value=0b111)
        entry, hit = bht.access(0x4000)
        assert not hit
        assert entry.value == 0b111
        assert entry.fresh

    def test_hits_on_second_access(self):
        bht = IdealBHT()
        bht.access(0x4000)
        entry, hit = bht.access(0x4000)
        assert hit

    def test_never_evicts(self):
        bht = IdealBHT()
        for pc in range(10_000):
            bht.access(pc)
        assert bht.num_entries == 10_000
        assert bht.stats.evictions == 0

    def test_distinct_slots(self):
        bht = IdealBHT()
        slots = {bht.access(pc)[0].slot for pc in range(100)}
        assert len(slots) == 100

    def test_peek_does_not_allocate(self):
        bht = IdealBHT()
        assert bht.peek(0x1234) is None
        assert bht.num_entries == 0
        assert bht.stats.accesses == 0

    def test_flush_clears_everything(self):
        bht = IdealBHT()
        bht.access(1)
        bht.access(2)
        bht.flush()
        assert bht.num_entries == 0
        assert bht.stats.flushes == 1

    def test_stats_hit_rate(self):
        bht = IdealBHT()
        bht.access(1)
        bht.access(1)
        bht.access(1)
        bht.access(2)
        assert bht.stats.hits == 2
        assert bht.stats.misses == 2
        assert bht.stats.hit_rate == 0.5


class TestCacheBHT:
    def test_validates_geometry(self):
        with pytest.raises(ValueError):
            CacheBHT(0)
        with pytest.raises(ValueError):
            CacheBHT(8, 0)
        with pytest.raises(ValueError):
            CacheBHT(10, 4)  # not a multiple

    def test_direct_mapped_conflict(self):
        bht = CacheBHT(4, 1)
        # pcs 0 and 4 map to the same set in a 4-set direct-mapped table.
        bht.access(0)
        entry, hit = bht.access(4)
        assert not hit
        _entry, hit = bht.access(0)
        assert not hit  # got evicted by pc=4
        assert bht.stats.evictions >= 1

    def test_set_associative_avoids_that_conflict(self):
        bht = CacheBHT(8, 4)  # 2 sets, 4 ways
        bht.access(0)
        bht.access(2)  # same set (pc % 2 == 0), different tag
        _entry, hit = bht.access(0)
        assert hit

    def test_lru_evicts_least_recent(self):
        bht = CacheBHT(4, 4)  # one set, four ways
        for pc in (10, 20, 30, 40):
            bht.access(pc)
        bht.access(10)  # refresh 10; 20 is now LRU
        bht.access(50)  # evicts 20
        assert bht.peek(20) is None
        assert bht.peek(10) is not None
        assert bht.peek(30) is not None

    def test_eviction_reports_slot(self):
        bht = CacheBHT(1, 1)
        bht.access(0)
        bht.access(1)
        slots = bht.drain_evicted_slots()
        assert slots == [0]
        assert bht.drain_evicted_slots() == []

    def test_slot_ids_stable_per_physical_way(self):
        bht = CacheBHT(8, 2)
        entry_a, _ = bht.access(0)
        slot_a = entry_a.slot
        bht.flush()
        entry_b, _ = bht.access(0)
        assert entry_b.slot == slot_a

    def test_new_entry_initialised(self):
        bht = CacheBHT(4, 2, init_value=0b1111)
        entry, hit = bht.access(123)
        assert not hit
        assert entry.valid
        assert entry.fresh
        assert entry.value == 0b1111

    def test_flush_invalidates(self):
        bht = CacheBHT(8, 2)
        bht.access(3)
        bht.flush()
        assert bht.peek(3) is None
        assert bht.occupancy == 0

    def test_peek_no_stats(self):
        bht = CacheBHT(8, 2)
        bht.access(3)
        before = bht.stats.accesses
        bht.peek(3)
        bht.peek(99)
        assert bht.stats.accesses == before

    def test_occupancy_and_iteration(self):
        bht = CacheBHT(8, 2)
        for pc in range(5):
            bht.access(pc)
        assert bht.occupancy == 5
        assert len(list(bht)) == 5

    def test_tag_disambiguates_same_set(self):
        bht = CacheBHT(8, 2)  # 4 sets
        entry_a, _ = bht.access(1)
        entry_a.value = 111
        entry_b, _ = bht.access(5)  # same set, different tag
        entry_b.value = 222
        assert bht.peek(1).value == 111
        assert bht.peek(5).value == 222

    def test_hit_rate_converges_for_small_working_set(self):
        bht = CacheBHT(16, 4)
        for _round in range(100):
            for pc in range(8):
                bht.access(pc)
        assert bht.stats.hit_rate > 0.98


class TestMakeBHT:
    def test_none_gives_ideal(self):
        assert isinstance(make_bht(None), IdealBHT)

    def test_sized_gives_cache(self):
        bht = make_bht(256, 4)
        assert isinstance(bht, CacheBHT)
        assert bht.num_entries == 256
        assert bht.associativity == 4
