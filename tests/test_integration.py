"""Integration tests: the paper's headline claims, checked end-to-end.

These replay the full nine-benchmark suite through the key predictor
configurations and assert the *shape* results the paper reports
(orderings, gaps, crossovers) — the quantities EXPERIMENTS.md records.
"""

import pytest

from repro.core.automata import PAPER_AUTOMATA
from repro.core.static_training import GSgPredictor, PSgPredictor
from repro.core.twolevel import make_gag, make_pag, make_pap
from repro.predictors.base import TrainingUnavailable
from repro.predictors.btb import btb_a2, btb_last_time
from repro.predictors.static import BTFN, AlwaysTaken, ProfileGuided
from repro.sim.engine import ContextSwitchConfig
from repro.sim.runner import run_matrix


def _needs(trace, builder):
    if trace is None:
        raise TrainingUnavailable("NA")
    return builder(trace)


@pytest.fixture(scope="module")
def headline(suite_cases):
    """One shared matrix with the Figure 11 schemes + iso-accuracy configs."""
    builders = {
        "PAg-12": lambda t: make_pag(12),
        "GAg-18": lambda t: make_gag(18),
        "PAp-6": lambda t: make_pap(6),
        "GAg-6": lambda t: make_gag(6),
        "PAg-6": lambda t: make_pag(6),
        "PSg-12": lambda t: _needs(t, lambda tr: PSgPredictor.trained_on(tr, 12, 512, 4)),
        "GSg-12": lambda t: _needs(t, lambda tr: GSgPredictor.trained_on(tr, 12)),
        "BTB-A2": lambda t: btb_a2(),
        "BTB-LT": lambda t: btb_last_time(),
        "Profile": lambda t: _needs(t, ProfileGuided.trained_on),
        "BTFN": lambda t: BTFN(),
        "AT": lambda t: AlwaysTaken(),
    }
    return run_matrix(builders, suite_cases)


class TestFigure11Claims:
    def test_two_level_beats_every_other_family(self, headline):
        best_two_level = max(
            headline.gmean(s) for s in ("PAg-12", "GAg-18", "PAp-6")
        )
        for other in ("PSg-12", "GSg-12", "BTB-A2", "BTB-LT", "Profile", "BTFN", "AT"):
            assert best_two_level > headline.gmean(other), other

    def test_two_level_gap_is_substantial(self, headline):
        # Paper: 97 vs at most 94.4 — a >= 2.6 point lead. We require a
        # clear (>= 2 point) lead over the best non-two-level scheme.
        two_level = max(headline.gmean(s) for s in ("PAg-12", "GAg-18", "PAp-6"))
        rest = max(
            headline.gmean(s)
            for s in ("PSg-12", "GSg-12", "BTB-A2", "BTB-LT", "Profile", "BTFN", "AT")
        )
        assert two_level - rest >= 0.02

    def test_btb_ordering(self, headline):
        assert headline.gmean("BTB-A2") > headline.gmean("BTB-LT")

    def test_static_schemes_at_the_bottom(self, headline):
        floor = min(
            headline.gmean(s)
            for s in ("PAg-12", "GAg-18", "PAp-6", "BTB-A2", "Profile")
        )
        assert headline.gmean("BTFN") < floor
        assert headline.gmean("AT") < headline.gmean("BTFN")

    def test_always_taken_near_paper_value(self, headline):
        # Paper: ~62.5 %. Ours should land in the same regime.
        assert 0.50 < headline.gmean("AT") < 0.72

    def test_profiled_schemes_skip_na_benchmarks(self, headline):
        for scheme in ("PSg-12", "GSg-12", "Profile"):
            for benchmark in ("eqntott", "fpppp", "matrix300", "tomcatv"):
                assert headline.accuracy(scheme, benchmark) is None

    def test_two_level_strong_on_every_benchmark(self, headline):
        for benchmark in headline.benchmarks:
            assert headline.accuracy("PAg-12", benchmark) > 0.85, benchmark


class TestFigure6Claims:
    def test_pap_ge_pag_ge_gag_at_equal_history(self, headline):
        pap = headline.gmean("PAp-6", "int")
        pag = headline.gmean("PAg-6", "int")
        gag = headline.gmean("GAg-6", "int")
        assert pap > pag > gag

    def test_gag_weak_at_six_bits(self, headline):
        assert headline.gmean("GAg-6") < headline.gmean("PAg-12") - 0.03


class TestFigure7Claims:
    def test_gag_gains_big_from_history_length(self, headline):
        # Paper: ~9 points from 6 -> 18 bits.
        gain = headline.gmean("GAg-18", "int") - headline.gmean("GAg-6", "int")
        assert gain > 0.05

    def test_monotone_on_integer_codes(self, suite_cases):
        int_cases = [c for c in suite_cases if c.category == "int"]
        builders = {f"GAg-{k}": (lambda t, k=k: make_gag(k)) for k in (6, 10, 14, 18)}
        matrix = run_matrix(builders, int_cases)
        values = [matrix.gmean(f"GAg-{k}") for k in (6, 10, 14, 18)]
        assert values == sorted(values)


class TestFigure8Claims:
    def test_iso_accuracy_configs_close(self, headline):
        accuracies = [headline.gmean(s) for s in ("GAg-18", "PAg-12", "PAp-6")]
        assert max(accuracies) - min(accuracies) < 0.04

    def test_pag_is_cheapest_at_iso_accuracy(self):
        from repro.core.cost import cost_gag, cost_pag, cost_pap

        assert cost_pag(512, 4, 12) < cost_gag(18)
        assert cost_pag(512, 4, 12) < cost_pap(512, 4, 6)


class TestFigure9Claims:
    @pytest.fixture(scope="class")
    def switched(self, suite_cases):
        builders = {
            "GAg-18": lambda t: make_gag(18),
            "PAg-12": lambda t: make_pag(12),
            "PAp-6": lambda t: make_pap(6),
        }
        return run_matrix(builders, suite_cases, context_switches=ContextSwitchConfig())

    def test_average_degradation_small(self, headline, switched):
        # Paper: all three degrade by less than 1 point on average.
        for scheme in ("GAg-18", "PAg-12", "PAp-6"):
            degradation = headline.gmean(scheme) - switched.gmean(scheme)
            assert degradation < 0.02, scheme

    def test_gcc_hurts_most_under_pag(self, headline, switched):
        # gcc's traps flush the BHT constantly (paper: gcc degrades
        # far more than the others under PAg/PAp).
        degradations = {
            benchmark: headline.accuracy("PAg-12", benchmark)
            - switched.accuracy("PAg-12", benchmark)
            for benchmark in headline.benchmarks
        }
        worst = max(degradations, key=degradations.get)
        assert worst == "gcc", degradations

    def test_gag_robust_to_switches(self, headline, switched):
        # An initialised global register refills quickly (paper §5.1.4).
        degradation = headline.gmean("GAg-18") - switched.gmean("GAg-18")
        assert degradation < 0.01


class TestFigure10Claims:
    @pytest.fixture(scope="class")
    def bht_matrix(self, suite_cases):
        builders = {
            "IBHT": lambda t: make_pag(12, bht_entries=None),
            "512x4": lambda t: make_pag(12, bht_entries=512, bht_associativity=4),
            "256x1": lambda t: make_pag(12, bht_entries=256, bht_associativity=1),
        }
        return run_matrix(builders, suite_cases, context_switches=ContextSwitchConfig())

    def test_512x4_close_to_ideal(self, bht_matrix):
        assert bht_matrix.gmean("IBHT") - bht_matrix.gmean("512x4") < 0.01

    def test_small_direct_mapped_hurts_gcc_most(self, bht_matrix):
        losses = {
            benchmark: bht_matrix.accuracy("IBHT", benchmark)
            - bht_matrix.accuracy("256x1", benchmark)
            for benchmark in bht_matrix.benchmarks
        }
        assert max(losses, key=losses.get) == "gcc"
        assert losses["gcc"] > 0.01


class TestFigure5Claims:
    @pytest.fixture(scope="class")
    def automata_matrix(self, suite_cases):
        int_cases = [c for c in suite_cases if c.category == "int"]
        builders = {
            name: (lambda t, a=spec: make_pag(12, a))
            for name, spec in PAPER_AUTOMATA.items()
        }
        return run_matrix(builders, int_cases)

    def test_counters_beat_one_bit_automata(self, automata_matrix):
        # Paper: the four-state automata outperform Last-Time; A1 is the
        # weakest of the four. In our traces A1 and LT land within noise
        # of each other (EXPERIMENTS.md records the small deviation), so
        # the robust claim checked here is counters > {A1, LT}.
        weak = max(automata_matrix.gmean("LT"), automata_matrix.gmean("A1"))
        for name in ("A2", "A3", "A4"):
            assert automata_matrix.gmean(name) > weak + 0.01

    def test_a1_within_noise_of_lt(self, automata_matrix):
        assert abs(automata_matrix.gmean("A1") - automata_matrix.gmean("LT")) < 0.01

    def test_counter_family_tight(self, automata_matrix):
        # Paper: A2/A3/A4 "very close to each other".
        values = [automata_matrix.gmean(n) for n in ("A2", "A3", "A4")]
        assert max(values) - min(values) < 0.01
