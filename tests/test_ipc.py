"""Tests for the accuracy -> IPC first-order model."""

import pytest

from repro.core.twolevel import make_pag
from repro.predictors.btb import btb_a2
from repro.sim.engine import simulate
from repro.sim.ipc import MachineModel, ipc_estimate, ipc_from_result, speedup
from repro.trace import synthetic


class TestModelBasics:
    def test_perfect_prediction_full_ipc(self):
        machine = MachineModel(width=4, resolve_depth=8)
        estimate = ipc_estimate(1.0, branch_fraction=0.2, machine=machine)
        assert estimate.effective_ipc == pytest.approx(4.0)
        assert estimate.fetch_efficiency == pytest.approx(1.0)

    def test_paper_intro_claim_five_percent_hurts(self):
        # 5 % miss rate on a wide, deep machine loses a big chunk.
        machine = MachineModel(width=8, resolve_depth=12)
        estimate = ipc_estimate(0.95, branch_fraction=0.2, machine=machine)
        assert estimate.fetch_efficiency < 0.6

    def test_monotone_in_accuracy(self):
        values = [ipc_estimate(a, 0.2).effective_ipc for a in (0.8, 0.9, 0.95, 0.99)]
        assert values == sorted(values)

    def test_deeper_pipeline_amplifies_misses(self):
        shallow = ipc_estimate(0.94, 0.2, MachineModel(4, 4)).effective_ipc
        deep = ipc_estimate(0.94, 0.2, MachineModel(4, 16)).effective_ipc
        assert deep < shallow

    def test_fp_codes_less_sensitive(self):
        # Fewer branches per instruction -> less exposure to misses.
        int_style = ipc_estimate(0.9, branch_fraction=0.2)
        fp_style = ipc_estimate(0.9, branch_fraction=0.04)
        assert fp_style.effective_ipc > int_style.effective_ipc

    def test_validation(self):
        with pytest.raises(ValueError):
            ipc_estimate(1.2, 0.2)
        with pytest.raises(ValueError):
            ipc_estimate(0.9, 0.0)
        with pytest.raises(ValueError):
            MachineModel(width=0)


class TestFromMeasuredResults:
    def test_two_level_buys_real_ipc_over_btb(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(t) for t in (3, 4, 5)], length=30_000
        )
        pag = simulate(make_pag(10), trace)
        btb = simulate(btb_a2(), trace)
        machine = MachineModel(width=4, resolve_depth=10)
        gain = ipc_from_result(pag, machine).effective_ipc / ipc_from_result(
            btb, machine
        ).effective_ipc
        assert gain > 1.2  # the paper's "vital to delivering performance"

    def test_requires_instruction_counts(self):
        from repro.sim.results import SimulationResult

        with pytest.raises(ValueError):
            ipc_from_result(SimulationResult("s", "b", "", 100, 90))

    def test_speedup_helper_consistent(self):
        direct = speedup(0.97, 0.93, branch_fraction=0.2)
        assert direct > 1.1
        assert speedup(0.93, 0.93, 0.2) == pytest.approx(1.0)
