"""Tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import (
    CODE_BASE,
    DATA_BASE,
    AssemblyError,
    assemble,
)
from repro.isa.isa import Kind


class TestBasicAssembly:
    def test_addresses_advance_by_word(self):
        program = assemble("main: nop\n nop\n halt\n")
        assert [i.address for i in program.instructions] == [
            CODE_BASE,
            CODE_BASE + 4,
            CODE_BASE + 8,
        ]

    def test_labels_resolve(self):
        program = assemble(
            """
main:   li r2, 5
loop:   addi r2, r2, -1
        bcnd ne0, r2, loop
        halt
"""
        )
        assert program.labels["loop"] == CODE_BASE + 4
        branch = program.instructions[2]
        assert branch.kind is Kind.BRANCH_COND
        assert branch.operands[2] == CODE_BASE + 4

    def test_entry_point_defaults_to_main(self):
        program = assemble("start: nop\nmain: halt\n")
        assert program.entry_point == CODE_BASE + 4

    def test_entry_point_without_main(self):
        program = assemble("nop\nhalt\n")
        assert program.entry_point == CODE_BASE

    def test_comments_and_blanks(self):
        program = assemble(
            """
; full line comment
# another style
main: nop   ; trailing comment
      halt  # trailing comment
"""
        )
        assert len(program.instructions) == 2

    def test_forward_references(self):
        program = assemble(
            """
main:   br end
        nop
end:    halt
"""
        )
        assert program.instructions[0].operands[0] == CODE_BASE + 8


class TestDataSegment:
    def test_word_directive(self):
        program = assemble(
            """
main: halt
.data
table: .word 10 20 30
"""
        )
        base = program.labels["table"]
        assert base == DATA_BASE
        assert program.data[base] == 10
        assert program.data[base + 4] == 20
        assert program.data[base + 8] == 30

    def test_space_directive_zero_filled(self):
        program = assemble("main: halt\n.data\nbuf: .space 3\n")
        base = program.labels["buf"]
        assert [program.data[base + 4 * i] for i in range(3)] == [0, 0, 0]

    def test_data_labels_usable_as_immediates(self):
        program = assemble(
            """
main:   li r2, table
        halt
.data
table:  .word 7
"""
        )
        assert program.instructions[0].operands[1] == DATA_BASE

    def test_word_can_hold_label(self):
        program = assemble(
            """
main: halt
.data
ptr:  .word main
"""
        )
        assert program.data[DATA_BASE] == CODE_BASE

    def test_text_directive_switches_back(self):
        program = assemble(
            """
main: halt
.data
x: .word 1
.text
extra: nop
"""
        )
        assert program.labels["extra"] == CODE_BASE + 4


class TestOperandEncoding:
    def test_register_parsing(self):
        program = assemble("main: add r3, r4, r5\nhalt\n")
        assert program.instructions[0].operands == (3, 4, 5)

    def test_negative_and_hex_immediates(self):
        program = assemble("main: addi r2, r2, -7\nli r3, 0x40\nhalt\n")
        assert program.instructions[0].operands[2] == -7
        assert program.instructions[1].operands[1] == 0x40

    def test_condition_operand(self):
        program = assemble("main: bcnd gt0, r2, main\nhalt\n")
        assert program.instructions[0].operands[0] == "gt0"

    def test_symbolic_cmp_bit(self):
        program = assemble("main: bb1 lt, r9, main\nhalt\n")
        from repro.isa.isa import CMP_BITS

        assert program.instructions[0].operands[0] == CMP_BITS["lt"]

    def test_numeric_bit(self):
        program = assemble("main: bb0 5, r9, main\nhalt\n")
        assert program.instructions[0].operands[0] == 5


class TestErrors:
    @pytest.mark.parametrize(
        "source,fragment",
        [
            ("main: frobnicate r1\n", "unknown mnemonic"),
            ("main: add r1, r2\n", "expects 3 operands"),
            ("main: add r1, r2, x9\n", "expected register"),
            ("main: add r99, r2, r3\n", "out of range"),
            ("main: bcnd weird, r2, main\n", "unknown condition"),
            ("main: br nowhere\n", "undefined label"),
            ("main: .bogus 3\n", "unknown directive"),
            (".data\nx: add r1, r2, r3\n", "inside .data"),
            ("main: bb1 40, r2, main\n", "out of range"),
        ],
    )
    def test_error_cases(self, source, fragment):
        with pytest.raises(AssemblyError, match=fragment):
            assemble(source)

    def test_error_carries_line_number(self):
        try:
            assemble("main: nop\n bad r1\n")
        except AssemblyError as error:
            assert error.line_number == 2
        else:  # pragma: no cover
            pytest.fail("expected AssemblyError")
