"""Tests for the instruction-level simulator."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.cpu import CPU, ExecutionError, run_program
from repro.isa.isa import compare_bits, evaluate_condition, CMP_BITS
from repro.trace.events import BranchClass


def run(source, **kwargs):
    return run_program(assemble(source), **kwargs)


class TestConditionSemantics:
    def test_evaluate_condition(self):
        assert evaluate_condition("eq0", 0)
        assert evaluate_condition("ne0", 5)
        assert evaluate_condition("gt0", 1)
        assert not evaluate_condition("gt0", 0)
        assert evaluate_condition("lt0", -1)
        assert evaluate_condition("ge0", 0)
        assert evaluate_condition("le0", -3)
        with pytest.raises(ValueError):
            evaluate_condition("weird", 0)

    def test_compare_bits_relations(self):
        bits = compare_bits(3, 5)
        assert bits >> CMP_BITS["lt"] & 1
        assert bits >> CMP_BITS["le"] & 1
        assert bits >> CMP_BITS["ne"] & 1
        assert not (bits >> CMP_BITS["gt"] & 1)
        bits_eq = compare_bits(4, 4)
        assert bits_eq >> CMP_BITS["eq"] & 1
        assert bits_eq >> CMP_BITS["ge"] & 1


class TestExecution:
    def test_r0_hardwired_zero(self):
        state, _ = run("main: li r0, 99\n add r2, r0, r0\n halt\n")
        assert state.reg(0) == 0
        assert state.reg(2) == 0

    def test_arithmetic(self):
        state, _ = run(
            """
main:   li   r2, 6
        li   r3, 7
        mul  r4, r2, r3
        sub  r5, r4, r2
        div  r6, r4, r3
        halt
"""
        )
        assert state.reg(4) == 42
        assert state.reg(5) == 36
        assert state.reg(6) == 6

    def test_logic_and_shifts(self):
        state, _ = run(
            """
main:   li   r2, 0b1100
        li   r3, 0b1010
        and  r4, r2, r3
        or   r5, r2, r3
        xor  r6, r2, r3
        li   r7, 2
        sll  r8, r2, r7
        srl  r9, r2, r7
        halt
"""
        )
        assert state.reg(4) == 0b1000
        assert state.reg(5) == 0b1110
        assert state.reg(6) == 0b0110
        assert state.reg(8) == 0b110000
        assert state.reg(9) == 0b11

    def test_memory_round_trip(self):
        state, _ = run(
            """
main:   li  r2, 1234
        li  r3, buf
        st  r2, r3, 8
        ld  r4, r3, 8
        halt
.data
buf:    .space 4
"""
        )
        assert state.reg(4) == 1234

    def test_uninitialised_memory_reads_zero(self):
        state, _ = run("main: li r3, 0x9000\n ld r4, r3, 0\n halt\n")
        assert state.reg(4) == 0

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError, match="division"):
            run("main: li r2, 1\n div r3, r2, r0\n halt\n")

    def test_runaway_guard(self):
        with pytest.raises(ExecutionError, match="budget"):
            run("main: br main\n", max_instructions=100)

    def test_pc_off_the_rails(self):
        with pytest.raises(ExecutionError, match="outside"):
            run("main: li r2, 0\n jmp r2\n halt\n")


class TestBranchTracing:
    def test_conditional_branch_records(self):
        _, trace = run(
            """
main:   li   r2, 3
loop:   addi r2, r2, -1
        bcnd ne0, r2, loop
        halt
"""
        )
        conditional = trace.conditional_only()
        assert [r.taken for r in conditional] == [True, True, False]
        assert len(set(r.pc for r in conditional)) == 1

    def test_bb1_and_bb0(self):
        _, trace = run(
            """
main:   li   r2, 5
        li   r3, 9
        cmp  r4, r2, r3
        bb1  lt, r4, yes
        nop
yes:    bb0  gt, r4, also
        nop
also:   halt
"""
        )
        outcomes = [r.taken for r in trace.conditional_only()]
        assert outcomes == [True, True]  # 5<9 so lt set, gt clear

    def test_call_and_return_classes(self):
        _, trace = run(
            """
main:   bsr  sub
        halt
sub:    jmp  r1
"""
        )
        classes = [r.branch_class for r in trace]
        assert classes == [BranchClass.CALL, BranchClass.RETURN]

    def test_unconditional_and_register_jump(self):
        _, trace = run(
            """
main:   br   skip
        nop
skip:   li   r5, out
        jmp  r5
        nop
out:    halt
"""
        )
        classes = [r.branch_class for r in trace]
        assert classes == [BranchClass.UNCONDITIONAL, BranchClass.UNCONDITIONAL]

    def test_trap_marks_next_branch(self):
        _, trace = run(
            """
main:   trap 0
        li  r2, 1
        bcnd ne0, r2, end
end:    halt
"""
        )
        assert trace[0].trap is True

    def test_instruction_count(self):
        state, trace = run("main: nop\n nop\n halt\n")
        assert state.instructions_executed == 3
        assert trace.meta.total_instructions == 3

    def test_step_by_step(self):
        cpu = CPU(assemble("main: li r2, 1\n halt\n"))
        cpu.step()
        assert cpu.registers[2] == 1
        assert not cpu.halted
        cpu.step()
        assert cpu.halted
