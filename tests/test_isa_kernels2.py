"""Correctness tests for the second wave of assembly kernels."""

import pytest

from repro.core.twolevel import make_gag, make_pag
from repro.isa.cpu import run_program
from repro.isa.programs import assemble_program, program_trace
from repro.predictors.btb import btb_a2
from repro.sim.engine import simulate
from repro.trace.events import BranchClass


class TestHanoi:
    @pytest.mark.parametrize("disks,expected", [(1, 1), (4, 15), (8, 255)])
    def test_move_counts(self, disks, expected):
        state, _trace = program_trace("hanoi", disks=disks)
        assert state.reg(3) == expected

    def test_genuine_double_recursion(self):
        _state, trace = program_trace("hanoi", disks=8)
        calls = sum(1 for r in trace if r.branch_class == BranchClass.CALL)
        # The invocation tree has 2^(n+1) - 1 nodes, each entered by a
        # bsr (the root's bsr comes from main).
        assert calls == (1 << 9) - 1

    def test_matches_li_interpreter(self):
        from repro.trace.events import TraceBuilder
        from repro.workloads.base import BranchProbe
        from repro.workloads.li import HANOI_PROGRAM, Interpreter

        state, _trace = program_trace("hanoi", disks=7)
        interp = Interpreter(BranchProbe("li", TraceBuilder()))
        lisp_result = interp.run_program(HANOI_PROGRAM.replace("DISKS", "7"))
        assert state.reg(3) == lisp_result == 127


class TestQuicksort:
    @pytest.mark.parametrize("length", [4, 16, 48])
    def test_sorts(self, length):
        program = assemble_program("quicksort", length=length)
        state, _trace = run_program(program)
        base = program.labels["array"]
        values = [state.memory[base + 4 * i] for i in range(length)]
        assert values == sorted(values)

    def test_balanced_calls_and_returns(self):
        _state, trace = program_trace("quicksort", length=24)
        calls = sum(1 for r in trace if r.branch_class == BranchClass.CALL)
        returns = sum(1 for r in trace if r.branch_class == BranchClass.RETURN)
        assert calls == returns
        assert calls > 10

    def test_partition_branches_data_dependent(self):
        _state, trace = program_trace("quicksort", length=48)
        conditional = trace.conditional_only()
        taken = sum(r.taken for r in conditional) / len(conditional)
        assert 0.2 < taken < 0.9  # neither all-taken nor all-not-taken


class TestBinarySearch:
    def test_hit_count_matches_reference(self):
        length, probes = 64, 40
        state, _trace = program_trace("binary_search", length=length, probes=probes)
        table = set(3 * i for i in range(length))
        expected = sum(1 for p in range(probes) if (7 * p) % (3 * length) in table)
        assert state.reg(20) == expected

    def test_search_branches_hard_for_counters(self):
        _state, trace = program_trace("binary_search", length=128, probes=120)
        conditional = trace.conditional_only()
        btb = simulate(btb_a2(), conditional).accuracy
        # The go-left/go-right branch is essentially key-dependent:
        # nobody gets near the loop-branch ceiling here.
        assert btb < 0.95


class TestStringOps:
    def test_strlen_and_strcmp(self):
        length = 48
        state, _trace = program_trace("string_ops", length=length)
        assert state.reg(20) == length
        expected_diff = (ord("A") + (length - 1) % 26) - ord("!")
        assert state.reg(21) == expected_diff

    def test_scan_loops_highly_predictable(self):
        _state, trace = program_trace("string_ops", length=60)
        accuracy = simulate(make_pag(10), trace.conditional_only()).accuracy
        assert accuracy > 0.85


class TestKernelRegistryComplete:
    def test_all_ten_programs_run(self):
        from repro.isa.programs import PROGRAMS

        assert len(PROGRAMS) == 10
        for name in PROGRAMS:
            state, trace = program_trace(name)
            assert state.halted
            assert len(trace) > 0
