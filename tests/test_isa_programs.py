"""Tests for the assembly kernels: correctness + trace character."""

import pytest

from repro.core.twolevel import make_pag
from repro.isa.assembler import assemble
from repro.isa.cpu import run_program
from repro.isa.programs import (
    PROGRAMS,
    assemble_program,
    bubble_sort,
    gcd,
    matmul,
    program_trace,
    sieve,
    sum_recursive,
)
from repro.predictors.btb import btb_a2
from repro.sim.engine import simulate
from repro.trace.events import BranchClass


class TestKernelCorrectness:
    def test_gcd(self):
        state, _ = run_program(assemble(gcd(48, 36)))
        assert state.reg(2) == 12

    def test_gcd_coprime(self):
        state, _ = run_program(assemble(gcd(17, 4)))
        assert state.reg(2) == 1

    def test_sum_recursive(self):
        state, _ = run_program(assemble(sum_recursive(100)))
        assert state.reg(3) == 5050

    def test_sieve_marks_exactly_the_composites(self):
        limit = 30
        state, _ = run_program(assemble(sieve(limit)))
        flags_base = assemble(sieve(limit)).labels["flags"]
        primes = [
            n
            for n in range(2, limit)
            if state.memory.get(flags_base + 4 * n, 0) == 0
        ]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_bubble_sort_sorts(self):
        length = 12
        program = assemble(bubble_sort(length))
        state, _ = run_program(program)
        base = program.labels["array"]
        values = [state.memory[base + 4 * i] for i in range(length)]
        assert values == sorted(values)

    def test_matmul_against_python(self):
        n = 5
        program = assemble(matmul(n))
        state, _ = run_program(program)
        base = program.labels["c"]
        a = [[i + j for j in range(n)] for i in range(n)]
        b = [[i - j for j in range(n)] for i in range(n)]
        expected = [
            [sum(a[i][k] * b[k][j] for k in range(n)) for j in range(n)]
            for i in range(n)
        ]
        for i in range(n):
            for j in range(n):
                assert state.memory[base + 4 * (i * n + j)] == expected[i][j]


class TestKernelTraces:
    def test_recursion_emits_calls_and_returns(self):
        _, trace = program_trace("sum_recursive", n=20)
        classes = [r.branch_class for r in trace]
        assert classes.count(BranchClass.CALL) == 21  # main + 20 recursive
        assert classes.count(BranchClass.RETURN) == 21

    def test_counting_loop_trace_shape(self):
        _, trace = program_trace("counting_loop", iterations=50)
        conditional = trace.conditional_only()
        assert len(conditional) == 50
        assert sum(r.taken for r in conditional) == 49

    def test_backward_targets_for_loops(self):
        _, trace = program_trace("counting_loop", iterations=5)
        loop_branch = trace.conditional_only()[0]
        assert loop_branch.target < loop_branch.pc

    def test_two_level_predicts_isa_matmul_well(self):
        _, trace = program_trace("matmul", n=8)
        result = simulate(make_pag(10), trace)
        assert result.accuracy > 0.90

    def test_two_level_beats_btb_on_short_loops(self):
        # n=4: trip-4 loops — exactly where pattern history pays off.
        _, trace = program_trace("matmul", n=4)
        pag = simulate(make_pag(10), trace).accuracy
        btb = simulate(btb_a2(), trace).accuracy
        assert pag > btb


class TestProgramRegistry:
    def test_all_programs_assemble_and_run(self):
        for name in PROGRAMS:
            state, trace = program_trace(name)
            assert state.halted
            assert len(trace) > 0

    def test_unknown_program(self):
        with pytest.raises(KeyError):
            assemble_program("quicksort3000")

    def test_parameters_forwarded(self):
        _, small = program_trace("counting_loop", iterations=10)
        _, large = program_trace("counting_loop", iterations=100)
        assert len(large) > len(small)
