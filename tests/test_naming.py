"""Tests for the Table 3 configuration naming convention."""

import pytest

from repro.core.automata import A2, A3, LAST_TIME
from repro.core.naming import SchemeParseError, SchemeSpec
from repro.core.static_training import GSgPredictor, PSgPredictor
from repro.core.twolevel import GAgPredictor, PAgPredictor, PApPredictor
from repro.predictors.btb import BTBPredictor
from repro.trace.events import TraceBuilder


def _training_trace():
    builder = TraceBuilder()
    for i in range(50):
        builder.conditional(0x10, i % 3 != 0)
    return builder.build()


class TestParse:
    def test_pag_with_context_switch(self):
        spec = SchemeSpec.parse("PAg(BHT(512,4,12-sr),1xPHT(2^12,A2),c)")
        assert spec.scheme == "PAg"
        assert spec.history_size == 512
        assert spec.history_assoc == 4
        assert spec.history_bits == 12
        assert spec.pattern_tables == 1
        assert spec.pattern_bits == 12
        assert spec.pattern_content == "A2"
        assert spec.context_switch

    def test_gag(self):
        spec = SchemeSpec.parse("GAg(HR(1,,18-sr),1xPHT(2^18,A2),)")
        assert spec.history_entity == "HR"
        assert spec.history_bits == 18
        assert not spec.context_switch

    def test_ibht(self):
        spec = SchemeSpec.parse("PAg(IBHT(inf,,12-sr),1xPHT(2^12,A2),)")
        assert spec.ideal_history
        assert spec.history_size is None

    def test_btb_without_pattern_part(self):
        spec = SchemeSpec.parse("BTB(BHT(512,4,A2),,)")
        assert spec.pattern_tables is None
        assert spec.history_content == "A2"

    def test_pap_with_512_tables(self):
        spec = SchemeSpec.parse("PAp(BHT(512,4,6-sr),512xPHT(2^6,A2),)")
        assert spec.pattern_tables == 512
        assert spec.pattern_bits == 6

    def test_plain_pattern_size(self):
        spec = SchemeSpec.parse("GAg(HR(1,,6-sr),1xPHT(64,A2),)")
        assert spec.pattern_bits == 6

    def test_whitespace_tolerated(self):
        spec = SchemeSpec.parse("PAg( BHT(512, 4, 12-sr), 1xPHT(2^12, A2), c )")
        assert spec.history_size == 512

    def test_rejects_garbage(self):
        with pytest.raises(SchemeParseError):
            SchemeSpec.parse("what even is this")

    def test_rejects_non_power_of_two_pht(self):
        with pytest.raises(SchemeParseError):
            SchemeSpec.parse("GAg(HR(1,,6-sr),1xPHT(63,A2),)")


class TestRoundTrip:
    CASES = [
        "PAg(BHT(512,4,12-sr),1xPHT(2^12,A2),c)",
        "GAg(HR(1,,18-sr),1xPHT(2^18,A2),)",
        "PAg(IBHT(inf,,12-sr),1xPHT(2^12,A2),)",
        "PAp(BHT(512,4,6-sr),512xPHT(2^6,A2),)",
        "GSg(HR(1,,12-sr),1xPHT(2^12,PB),)",
        "PSg(BHT(512,4,12-sr),1xPHT(2^12,PB),c)",
        "BTB(BHT(512,4,A2),,)",
        "BTB(BHT(512,4,LT),,c)",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_format_parse_format_is_stable(self, text):
        spec = SchemeSpec.parse(text)
        assert SchemeSpec.parse(spec.format()) == spec


class TestBuild:
    def test_builds_gag(self):
        predictor = SchemeSpec.parse("GAg(HR(1,,10-sr),1xPHT(2^10,A2),)").build()
        assert isinstance(predictor, GAgPredictor)
        assert predictor.history_bits == 10

    def test_builds_pag_with_automaton(self):
        predictor = SchemeSpec.parse("PAg(BHT(256,1,8-sr),1xPHT(2^8,A3),)").build()
        assert isinstance(predictor, PAgPredictor)
        assert predictor.automaton is A3
        assert predictor.bht.num_entries == 256
        assert predictor.bht.associativity == 1

    def test_builds_pap_ideal(self):
        predictor = SchemeSpec.parse("PAp(IBHT(inf,,6-sr),infxPHT(2^6,A2),)").build()
        assert isinstance(predictor, PApPredictor)

    def test_builds_btb(self):
        predictor = SchemeSpec.parse("BTB(BHT(512,4,LT),,)").build()
        assert isinstance(predictor, BTBPredictor)
        assert predictor.automaton is LAST_TIME

    def test_builds_static_training_with_trace(self):
        trace = _training_trace()
        gsg = SchemeSpec.parse("GSg(HR(1,,8-sr),1xPHT(2^8,PB),)").build(trace)
        psg = SchemeSpec.parse("PSg(BHT(512,4,8-sr),1xPHT(2^8,PB),)").build(trace)
        assert isinstance(gsg, GSgPredictor)
        assert isinstance(psg, PSgPredictor)

    def test_static_training_requires_trace(self):
        with pytest.raises(SchemeParseError):
            SchemeSpec.parse("GSg(HR(1,,8-sr),1xPHT(2^8,PB),)").build()

    def test_built_predictor_name_is_canonical(self):
        text = "PAg(BHT(512,4,12-sr),1xPHT(2^12,A2),)"
        predictor = SchemeSpec.parse(text).build()
        assert predictor.name == text
