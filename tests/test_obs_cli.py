"""``python -m repro.obs`` CLI and the ``repro-sim run --obs`` summary."""

import json

import pytest

from repro.obs.cli import main as obs_main
from repro.sim.cli import main as sim_main
from repro.trace.io import save_trace
from repro.trace.synthetic import loop_trace


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "loop.btb"
    save_trace(loop_trace(iterations=500, trip_count=4), path)
    return path


class TestObsCLI:
    def test_json_output_is_schema_stable(self, trace_file, capsys):
        code = obs_main(
            ["--scheme", "GAg", "--trace", str(trace_file), "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.obs/1"
        assert payload["scheme"] == "gag-12"  # bare name normalised
        assert payload["result"]["conditional_branches"] == 2000
        assert payload["intervals"]
        assert payload["streaks"]
        assert payload["offenders"]
        assert {"build", "simulate"} <= set(payload["timing"])

    def test_workload_run_emits_json(self, capsys):
        code = obs_main(
            ["--scheme", "gag-8", "--workload", "eqntott", "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "eqntott"
        assert payload["result"]["correct_predictions"] > 0
        assert "trace_load" in payload["timing"]

    def test_text_output(self, trace_file, capsys):
        code = obs_main(["--scheme", "pag-8", "--trace", str(trace_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "mispredict streaks" in out
        assert "table counters" in out

    def test_events_jsonl(self, trace_file, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        code = obs_main(
            [
                "--scheme", "gag-8",
                "--trace", str(trace_file),
                "--events", str(events),
                "--events-sample", "10",
                "--format", "json",
            ]
        )
        assert code == 0
        lines = [json.loads(line) for line in events.read_text().splitlines()]
        assert lines[0]["event"] == "run_start"
        assert lines[-1]["event"] == "run_end"
        branches = [line for line in lines if line["event"] == "branch"]
        assert lines[-1]["branches_written"] == len(branches) == 200
        assert lines[-1]["branches_seen"] == 2000
        payload = json.loads(capsys.readouterr().out)
        assert payload["events_path"] == str(events)

    def test_out_file_matches_stdout(self, trace_file, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        code = obs_main(
            [
                "--scheme", "gag-8",
                "--trace", str(trace_file),
                "--format", "json",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        stdout_payload = json.loads(capsys.readouterr().out)
        file_payload = json.loads(out_file.read_text())
        assert file_payload == stdout_payload

    def test_cprofile_and_phase_profile(self, trace_file, capsys):
        code = obs_main(
            [
                "--scheme", "gag-8",
                "--trace", str(trace_file),
                "--profile-phases",
                "--cprofile",
                "--format", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["timing"]["predict"]["calls"] == 2000
        assert payload["timing"]["update"]["calls"] == 2000
        assert "function calls" in payload["cprofile"]

    def test_interval_zero_disables_series(self, trace_file, capsys):
        code = obs_main(
            ["--scheme", "gag-8", "--trace", str(trace_file),
             "--interval", "0", "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["interval_instructions"] is None
        assert payload["intervals"] == []

    def test_unknown_scheme_fails_cleanly(self, trace_file, capsys):
        code = obs_main(["--scheme", "nonsense-42", "--trace", str(trace_file)])
        assert code == 2
        assert "repro.obs:" in capsys.readouterr().err

    def test_scheme_and_workload_required(self):
        with pytest.raises(SystemExit):
            obs_main(["--scheme", "gag-8"])  # neither --workload nor --trace


class TestLedgerCLI:
    """The run/history/compare/regress/export-bench subcommand surface."""

    def _record_two_runs(self, trace_file, ledger_dir):
        for _ in range(2):
            code = obs_main(
                ["run", "--scheme", "gag-8", "--trace", str(trace_file),
                 "--format", "json", "--ledger", str(ledger_dir)]
            )
            assert code == 0

    def test_run_subcommand_matches_flat_form(self, trace_file, capsys):
        code = obs_main(
            ["run", "--scheme", "GAg", "--trace", str(trace_file), "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.obs/1"
        assert payload["scheme"] == "gag-12"

    def test_run_ledger_records_and_notes(self, trace_file, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        self._record_two_runs(trace_file, ledger_dir)
        err = capsys.readouterr().err
        assert "# ledger: run" in err
        assert "(seq 1)" in err
        assert len(list(ledger_dir.glob("*.jsonl"))) == 1

    def test_history_lists_recorded_runs(self, trace_file, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        self._record_two_runs(trace_file, ledger_dir)
        capsys.readouterr()
        code = obs_main(["history", "--ledger", str(ledger_dir), "--format", "json"])
        assert code == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == 2
        assert [e["seq"] for e in entries] == [0, 1]
        assert all(e["scheme"] == "gag-8" for e in entries)

    def test_compare_identical_runs(self, trace_file, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        self._record_two_runs(trace_file, ledger_dir)
        capsys.readouterr()
        code = obs_main(["compare", "latest~1", "latest", "--ledger", str(ledger_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "same configuration : yes" in out
        assert "+0.0000 pp" in out  # deterministic rerun: zero drift

    def test_compare_unknown_selector_exits_2(self, trace_file, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        self._record_two_runs(trace_file, ledger_dir)
        capsys.readouterr()
        code = obs_main(["compare", "latest", "latest~9",
                         "--ledger", str(ledger_dir)])
        assert code == 2
        assert "repro.obs:" in capsys.readouterr().err

    def test_compare_empty_ledger_is_friendly(self, tmp_path, capsys):
        code = obs_main(["compare", "latest", "latest~9",
                         "--ledger", str(tmp_path / "empty")])
        assert code == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_history_empty_ledger_is_friendly(self, tmp_path, capsys):
        code = obs_main(["history", "--ledger", str(tmp_path / "missing")])
        assert code == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_regress_clean_on_identical_runs(self, trace_file, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        self._record_two_runs(trace_file, ledger_dir)
        capsys.readouterr()
        code = obs_main(["regress", "--ledger", str(ledger_dir), "--strict"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_regress_flags_perturbed_accuracy(self, trace_file, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        ledger_dir = tmp_path / "ledger"
        self._record_two_runs(trace_file, ledger_dir)
        ledger = RunLedger(ledger_dir)
        latest = ledger.find("latest")
        perturbed = latest.to_dict()
        perturbed.update(run_id="", seq=-1, timestamp=0.0,
                         correct_predictions=latest.correct_predictions - 3)
        from repro.obs.ledger import LedgerEntry

        ledger.append(LedgerEntry.from_dict(perturbed))
        capsys.readouterr()
        code = obs_main(["regress", "--ledger", str(ledger_dir), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "accuracy-drift"

    def test_regress_rejects_nan_tolerance(self, tmp_path, capsys):
        code = obs_main(["regress", "--ledger", str(tmp_path / "empty"),
                         "--tolerance", "nan"])
        assert code == 2
        assert "finite" in capsys.readouterr().err

    def test_export_bench(self, trace_file, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        self._record_two_runs(trace_file, ledger_dir)
        out = tmp_path / "BENCH_test.json"
        capsys.readouterr()
        code = obs_main(["export-bench", "--ledger", str(ledger_dir),
                         "--out", str(out), "--date", "20260806"])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.bench/1"
        assert payload["date"] == "20260806"
        assert payload["simulator_throughput"]


class TestSimCLIObs:
    def test_run_obs_summary(self, trace_file, capsys):
        code = sim_main(["run", "pag-8", str(trace_file), "--obs"])
        assert code == 0
        out = capsys.readouterr().out
        assert "streaks:" in out
        assert "pc 0x" in out

    def test_run_without_obs_unchanged(self, trace_file, capsys):
        code = sim_main(["run", "pag-8", str(trace_file)])
        assert code == 0
        assert "streaks:" not in capsys.readouterr().out


class TestCharacterizeCLI:
    """The characterize / attribute subcommand surface."""

    def test_characterize_text_sections(self, trace_file, capsys):
        code = obs_main(
            ["characterize", "--trace", str(trace_file), "--scheme", "gag-8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro.analysis.char" in out
        assert "history sensitivity" in out
        assert "cluster winner table" in out
        assert "scheme attribution" in out

    def test_characterize_json_schema_and_verify(self, trace_file, capsys):
        code = obs_main(
            ["characterize", "--trace", str(trace_file), "--scheme", "gag-8",
             "--verify", "--max-k", "6", "--format", "json"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "counts identical" in captured.err
        payload = json.loads(captured.out)
        assert payload["schema"] == "repro.analysis.char/1"
        assert payload["max_k"] == 6
        assert len(payload["global_curve"]) == 7
        assert [s["scheme"] for s in payload["schemes"]] == ["gag-8"]

    def test_characterize_ledger_and_metrics_round_trip(
        self, trace_file, tmp_path, capsys
    ):
        ledger_dir = tmp_path / "ledger"
        code = obs_main(
            ["characterize", "--trace", str(trace_file), "--scheme", "gag-8",
             "--format", "json", "--ledger", str(ledger_dir)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)

        code = obs_main(
            ["history", "--ledger", str(ledger_dir), "--kind", "char",
             "--format", "json"]
        )
        assert code == 0
        (entry,) = json.loads(capsys.readouterr().out)
        assert entry["kind"] == "char"
        assert entry["extra"]["characterization"] == payload

        code = obs_main(["metrics", "--ledger", str(ledger_dir), "--kind", "char"])
        assert code == 0
        exposition = capsys.readouterr().out
        assert "repro_char_static_sites" in exposition
        assert "repro_char_conditional_entropy_bits" in exposition
        assert "repro_char_scheme_accuracy_ratio" in exposition

    def test_characterize_out_file(self, trace_file, tmp_path, capsys):
        out_file = tmp_path / "char.json"
        code = obs_main(
            ["characterize", "--trace", str(trace_file), "--scheme", "gag-8",
             "--format", "json", "--out", str(out_file)]
        )
        assert code == 0
        stdout_payload = json.loads(capsys.readouterr().out)
        assert json.loads(out_file.read_text()) == stdout_payload

    def test_run_with_characterize_embeds_report(self, trace_file, capsys):
        code = obs_main(
            ["run", "--scheme", "gag-8", "--trace", str(trace_file),
             "--characterize", "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        embedded = payload["extra"]["characterization"]
        assert embedded["schema"] == "repro.analysis.char/1"
        assert [s["scheme"] for s in embedded["schemes"]] == ["gag-8"]
        assert "characterize" in payload["timing"]

    def test_attribute_text(self, trace_file, capsys):
        code = obs_main(
            ["attribute", "--scheme", "GAg", "--trace", str(trace_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gag-12" in out
        assert "misprediction breakdown" in out
        assert "Interference report" in out

    def test_attribute_json_consistent(self, trace_file, capsys):
        code = obs_main(
            ["attribute", "--scheme", "gag-8", "--trace", str(trace_file),
             "--format", "json", "--top", "3"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        breakdown = payload["breakdown"]
        assert breakdown["total_branches"] == 2000
        assert breakdown["total_misses"] == (
            breakdown["cold_misses"]
            + breakdown["post_flush_misses"]
            + breakdown["steady_misses"]
        )
        assert len(payload["sites"]) <= 3
        assert "first level" in payload["interference"]

    def test_attribute_unknown_scheme_exits_2(self, trace_file, capsys):
        code = obs_main(
            ["attribute", "--scheme", "nonsense-42", "--trace", str(trace_file)]
        )
        assert code == 2
        assert "repro.obs:" in capsys.readouterr().err
