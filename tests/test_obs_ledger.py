"""The run ledger and regression sentinel (repro.obs.ledger).

Guarantees under test:

* exact ``to_dict``/``from_dict`` round-trip of ledger entries,
* content-addressed sharding: same config -> same shard, monotone seq,
* selector resolution (``latest``, ``latest~N``, run-id prefixes),
* the regression sentinel's edge cases — empty ledger, first run,
  identical runs, NaN/inf tolerances — and its core promise: a
  perturbed accuracy is flagged as an error, a throughput collapse as
  a warning,
* the entry builders and the ``BENCH_<date>.json`` export.
"""

import json

import pytest

from repro.obs.ledger import (
    LEDGER_SCHEMA,
    LedgerEntry,
    RunLedger,
    compare_entries,
    compute_config_hash,
    entries_from_matrix,
    entry_from_benchmark,
    export_bench,
    format_history,
    regress,
)


def _entry(correct=900, branches=1000, rate=1e6, scheme="gag-8", workload="eqntott"):
    return LedgerEntry(
        kind="obs",
        scheme=scheme,
        workload=workload,
        dataset="test",
        conditional_branches=branches,
        correct_predictions=correct,
        total_instructions=10 * branches,
        wall_time=branches / rate if rate else 0.0,
        branches_per_sec=rate,
        phases={"simulate": branches / rate if rate else 0.0},
    )


@pytest.fixture()
def ledger(tmp_path):
    return RunLedger(tmp_path / "ledger")


class TestLedgerEntry:
    def test_round_trip_is_exact(self, ledger):
        recorded = ledger.append(_entry())
        assert LedgerEntry.from_dict(recorded.to_dict()) == recorded

    def test_round_trip_through_json(self, ledger):
        recorded = ledger.append(_entry())
        reloaded = LedgerEntry.from_dict(json.loads(json.dumps(recorded.to_dict())))
        assert reloaded == recorded

    def test_schema_tag_present_and_checked(self):
        payload = _entry().to_dict()
        assert payload["schema"] == LEDGER_SCHEMA
        with pytest.raises(ValueError):
            LedgerEntry.from_dict({**payload, "schema": "something/else"})

    def test_accuracy_none_without_branches(self):
        assert entry_from_benchmark("test_bench_fig9", 1.5).accuracy is None
        assert _entry().accuracy == 0.9


class TestRunLedger:
    def test_append_assigns_bookkeeping(self, ledger):
        recorded = ledger.append(_entry())
        assert recorded.config_hash == compute_config_hash(
            "obs", "gag-8", "eqntott", "test"
        )
        assert recorded.seq == 0
        assert len(recorded.run_id) == 16
        assert recorded.timestamp > 0

    def test_same_config_shares_shard_and_increments_seq(self, ledger):
        first = ledger.append(_entry())
        second = ledger.append(_entry())
        assert first.config_hash == second.config_hash
        assert [e.seq for e in ledger.runs(first.config_hash)] == [0, 1]
        shards = list(ledger.directory.glob("*.jsonl"))
        assert len(shards) == 1
        assert shards[0].stem == first.config_hash[: RunLedger.SHARD_CHARS]

    def test_different_config_different_shard(self, ledger):
        a = ledger.append(_entry())
        b = ledger.append(_entry(scheme="pag-8"))
        assert a.config_hash != b.config_hash
        assert len(list(ledger.directory.glob("*.jsonl"))) == 2

    def test_history_filters(self, ledger):
        ledger.append(_entry())
        ledger.append(_entry(scheme="pag-8", workload="gcc"))
        assert len(ledger.history()) == 2
        assert len(ledger.history(scheme="pag-8")) == 1
        assert ledger.history(workload="gcc")[0].scheme == "pag-8"
        assert len(ledger.history(limit=1)) == 1

    def test_find_selectors(self, ledger):
        first = ledger.append(_entry(correct=900))
        second = ledger.append(_entry(correct=901))
        assert ledger.find("latest").run_id == second.run_id
        assert ledger.find("latest~1").run_id == first.run_id
        assert ledger.find(first.run_id[:8]).run_id == first.run_id

    def test_find_rejects_bad_selectors(self, ledger):
        with pytest.raises(KeyError):
            ledger.find("latest")  # empty ledger
        ledger.append(_entry())
        with pytest.raises(KeyError):
            ledger.find("latest~5")  # out of range
        with pytest.raises(KeyError):
            ledger.find("abc")  # prefix too short
        with pytest.raises(KeyError):
            ledger.find("zzzz")  # run ids are hex: can never match

    def test_shard_is_append_only_jsonl(self, ledger):
        ledger.append(_entry())
        ledger.append(_entry())
        shard = next(ledger.directory.glob("*.jsonl"))
        lines = shard.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["schema"] == LEDGER_SCHEMA for line in lines)


class TestCompare:
    def test_delta_between_runs(self, ledger):
        a = ledger.append(_entry(correct=900, rate=1e6))
        b = ledger.append(_entry(correct=905, rate=2e6))
        delta = compare_entries(a, b)
        assert delta.same_config
        assert delta.accuracy_delta == pytest.approx(0.005)
        assert delta.mispredictions_delta == -5
        assert delta.throughput_ratio == pytest.approx(2.0)
        assert "+0.5000 pp" in delta.format_text()

    def test_cross_config_flagged(self, ledger):
        a = ledger.append(_entry())
        b = ledger.append(_entry(scheme="pag-8"))
        delta = compare_entries(a, b)
        assert not delta.same_config
        assert "NO" in delta.format_text()


class TestRegress:
    def test_empty_ledger_is_clean(self, ledger):
        report = regress(ledger)
        assert report.ok
        assert report.checked_configs == 0
        assert report.exit_code(strict=True) == 0

    def test_first_run_is_skipped_not_flagged(self, ledger):
        ledger.append(_entry())
        report = regress(ledger)
        assert report.ok
        assert report.skipped_configs == 1
        assert report.checked_configs == 0

    def test_identical_runs_are_clean(self, ledger):
        ledger.append(_entry())
        ledger.append(_entry())
        report = regress(ledger)
        assert report.ok
        assert report.checked_configs == 1
        assert "clean" in report.format_text()

    def test_perturbed_accuracy_is_an_error(self, ledger):
        ledger.append(_entry(correct=900))
        ledger.append(_entry(correct=905))  # accuracy moved: deterministic sim -> bug
        report = regress(ledger)
        assert len(report.errors) == 1
        finding = report.errors[0]
        assert finding.rule == "accuracy-drift"
        assert report.exit_code() == 1

    def test_tolerance_absorbs_small_drift(self, ledger):
        ledger.append(_entry(correct=900))
        ledger.append(_entry(correct=905))
        assert regress(ledger, tolerance=0.01).ok

    def test_throughput_drop_is_a_warning(self, ledger):
        for _ in range(3):
            ledger.append(_entry(rate=1e6))
        ledger.append(_entry(rate=1e5))  # 10x slower than the rolling median
        report = regress(ledger)
        assert not report.errors
        assert len(report.warnings) == 1
        assert report.warnings[0].rule == "throughput-drop"
        assert report.exit_code() == 0  # warnings gate only under --strict
        assert report.exit_code(strict=True) == 1

    def test_nan_and_inf_tolerances_are_rejected(self, ledger):
        ledger.append(_entry())
        for bad in (float("nan"), float("inf"), -0.5, 1.5):
            with pytest.raises(ValueError):
                regress(ledger, tolerance=bad)
        with pytest.raises(ValueError):
            regress(ledger, throughput_drop=float("nan"))
        with pytest.raises(ValueError):
            regress(ledger, window=0)

    def test_bench_entries_skip_accuracy_rule(self, ledger):
        ledger.append(entry_from_benchmark("test_bench_fig9", 1.0))
        ledger.append(entry_from_benchmark("test_bench_fig9", 2.0))
        assert not regress(ledger).errors

    @staticmethod
    def _phased_entry(simulate):
        entry = _entry(rate=0.0)
        return LedgerEntry.from_dict(
            {**entry.to_dict(), "phases": {"simulate": simulate, "build": 0.001}}
        )

    def test_phase_blowup_is_a_warning(self, ledger):
        for _ in range(3):
            ledger.append(self._phased_entry(simulate=0.1))
        ledger.append(self._phased_entry(simulate=0.5))  # 5x the rolling median
        report = regress(ledger)
        assert not report.errors
        assert len(report.warnings) == 1
        finding = report.warnings[0]
        assert finding.rule == "phase-drift"
        assert "simulate" in finding.message
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_phase_within_bound_is_clean(self, ledger):
        for _ in range(3):
            ledger.append(self._phased_entry(simulate=0.1))
        ledger.append(self._phased_entry(simulate=0.15))  # 1.5x < default 2x bound
        assert regress(ledger).ok

    def test_sub_10ms_phases_are_ignored(self, ledger):
        # build is 1ms in every entry; even a huge relative jump on a
        # sub-floor baseline is timing noise, not a regression.
        for _ in range(3):
            ledger.append(self._phased_entry(simulate=0.1))
        perturbed = LedgerEntry.from_dict(
            {**self._phased_entry(simulate=0.1).to_dict(),
             "phases": {"simulate": 0.1, "build": 0.009}}
        )
        ledger.append(perturbed)
        assert regress(ledger).ok

    def test_phase_drift_zero_disables_rule(self, ledger):
        for _ in range(3):
            ledger.append(self._phased_entry(simulate=0.1))
        ledger.append(self._phased_entry(simulate=5.0))
        assert regress(ledger, phase_drift=0.0).ok

    def test_phase_drift_rejects_nan(self, ledger):
        ledger.append(_entry())
        with pytest.raises(ValueError):
            regress(ledger, phase_drift=float("nan"))


class TestBuildersAndExport:
    def test_entry_from_benchmark_keeps_scalars_only(self):
        entry = entry_from_benchmark(
            "test_bench_fig9", 1.25, {"gmean": 0.9, "rows": [1, 2], "label": "fig9"}
        )
        assert entry.kind == "bench"
        assert entry.wall_time == 1.25
        assert entry.extra == {"gmean": 0.9, "label": "fig9"}

    def test_entries_from_matrix(self, ledger):
        from repro.sim.parallel import spec
        from repro.sim.runner import BenchmarkCase, run_matrix
        from repro.trace import synthetic

        cases = [
            BenchmarkCase(
                name=name,
                category="int",
                test_trace=synthetic.loop_trace(iterations=100, trip_count=4, name=name),
            )
            for name in ("a", "b")
        ]
        matrix = run_matrix({"GAg-6": spec("gag-6"), "AT": spec("always-taken")}, cases)
        entries = ledger.extend(entries_from_matrix(matrix))
        assert len(entries) == 4
        assert {e.kind for e in entries} == {"matrix"}
        assert all(e.conditional_branches > 0 for e in entries)
        assert all("simulate" in e.phases for e in entries)
        assert all(e.extra.get("rss_peak_bytes", 0) > 0 for e in entries)

    def test_entries_from_matrix_embeds_span_summaries(self, ledger):
        from repro.obs.spans import SpanCollector
        from repro.sim.parallel import spec
        from repro.sim.runner import BenchmarkCase, run_matrix
        from repro.trace import synthetic

        cases = [
            BenchmarkCase(
                name="a",
                category="int",
                test_trace=synthetic.loop_trace(iterations=100, trip_count=4, name="a"),
            )
        ]
        tracer = SpanCollector()
        matrix = run_matrix({"GAg-6": spec("gag-6")}, cases, tracer=tracer)
        (entry,) = entries_from_matrix(matrix, spans=tracer)
        summary = entry.extra["spans"]
        assert summary["count"] > 0
        assert "simulate" in summary["by_name"]
        assert summary["by_name"]["simulate"]["seconds"] > 0

    def test_format_history(self, ledger):
        assert format_history([]) == "(ledger is empty)"
        ledger.append(_entry())
        text = format_history(ledger.entries())
        assert "gag-8" in text
        assert "90.0000%" in text

    def test_export_bench_snapshot(self, ledger, tmp_path):
        ledger.append(entry_from_benchmark("test_bench_fig9", 1.0, {"gmean": 0.9}))
        ledger.append(_entry())
        out = export_bench(ledger, tmp_path / "BENCH_test.json", date_stamp="20260806")
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.bench/1"
        assert payload["date"] == "20260806"
        assert payload["benchmarks"][0]["name"] == "test_bench_fig9"
        assert payload["simulator_throughput"][0]["scheme"] == "gag-8"
        assert payload["simulator_throughput"][0]["accuracy"] == pytest.approx(0.9)


class TestCharacterizationEntries:
    def _payload(self):
        return {
            "schema": "repro.analysis.char/1",
            "workload": "loop",
            "dataset": "d1",
            "static_sites": 2,
            "outcome_entropy_bits": 0.5,
        }

    def test_entry_from_characterization(self):
        from repro.obs.ledger import entry_from_characterization

        entry = entry_from_characterization(self._payload(), wall_time=1.5)
        assert entry.kind == "char"
        assert entry.workload == "loop"
        assert entry.dataset == "d1"
        assert entry.wall_time == 1.5
        assert entry.accuracy is None  # counts live in the payload
        assert entry.extra["characterization"]["static_sites"] == 2

    def test_same_workload_shares_config_hash(self):
        from repro.obs.ledger import entry_from_characterization

        first = entry_from_characterization(self._payload())
        second = entry_from_characterization(self._payload())
        assert first.config_hash == second.config_hash

    def test_non_char_schema_rejected(self):
        from repro.obs.ledger import entry_from_characterization

        with pytest.raises(ValueError):
            entry_from_characterization({"schema": "repro.obs/1"})

    def test_round_trips_through_ledger(self, tmp_path):
        from repro.obs.ledger import RunLedger, entry_from_characterization

        ledger = RunLedger(tmp_path / "ledger")
        recorded = ledger.append(entry_from_characterization(self._payload()))
        (read_back,) = RunLedger(tmp_path / "ledger").history(kind="char")
        assert read_back.run_id == recorded.run_id
        assert read_back.extra["characterization"] == self._payload()
