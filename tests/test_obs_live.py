"""Live sweep monitoring (repro.obs.live) and its parallel-runner feed.

Guarantees under test:

* the monitor's done-count is monotone and never counts a crashed
  worker's in-flight cell,
* a worker silent beyond ``stale_after`` (with a cell claimed) is
  reported stale — the visible symptom of a crash,
* cache hits complete the bar without a worker,
* ``format_status`` / ``FollowPrinter`` render and tear down cleanly,
* ``execute_matrix(progress=...)`` actually delivers heartbeats, in
  every execution mode (cache hit, in-process, worker processes), and
  the observed done-count sequence is monotone.
"""

import io

import pytest

from repro.obs.live import (
    FollowPrinter,
    Heartbeat,
    SweepMonitor,
    format_status,
)


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _beat(worker, kind, cell="gag-8/eqntott", branches=0, wall=0.0):
    scheme, benchmark = cell.split("/")
    return Heartbeat(
        worker=worker, kind=kind, scheme=scheme, benchmark=benchmark,
        branches=branches, wall=wall,
    )


class TestHeartbeat:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Heartbeat(worker=1, kind="exploded", scheme="gag-8", benchmark="li")

    def test_cell_label_and_dict(self):
        beat = _beat(7, "done", "pag-8/gcc", branches=100, wall=0.5)
        assert beat.cell == "pag-8/gcc"
        assert beat.to_dict()["branches"] == 100


class TestSweepMonitor:
    def test_done_count_is_monotone(self):
        clock = FakeClock()
        monitor = SweepMonitor(total_cells=4, clock=clock)
        done_counts = [monitor.status().done]
        for cell in ("gag-8/a", "gag-8/b", "pag-8/a"):
            monitor.observe(_beat(11, "start", cell))
            done_counts.append(monitor.status().done)
            clock.advance(1.0)
            monitor.observe(_beat(11, "done", cell, branches=1000, wall=1.0))
            done_counts.append(monitor.status().done)
        assert done_counts == sorted(done_counts)
        assert monitor.done == 3

    def test_crashed_worker_goes_stale_not_done(self):
        clock = FakeClock()
        monitor = SweepMonitor(total_cells=4, stale_after=5.0, clock=clock)
        monitor.observe(_beat(11, "start", "gag-8/a"))
        monitor.observe(_beat(12, "start", "pag-8/a"))  # this worker will "crash"
        clock.advance(4.0)
        monitor.observe(_beat(11, "done", "gag-8/a", branches=500, wall=4.0))
        monitor.observe(_beat(11, "start", "gag-8/b"))
        clock.advance(4.0)  # worker 12 now silent 8 s > stale_after; 11 only 4 s
        status = monitor.status()
        assert status.done == 1  # the crashed worker's cell is NOT counted
        assert status.stale == (12,)
        assert "gag-8/b" in status.active
        assert "pag-8/a" not in status.active

    def test_stale_worker_recovers_on_next_beat(self):
        clock = FakeClock()
        monitor = SweepMonitor(total_cells=2, stale_after=5.0, clock=clock)
        monitor.observe(_beat(12, "start", "pag-8/a"))
        clock.advance(10.0)
        assert monitor.status().stale == (12,)
        monitor.observe(_beat(12, "done", "pag-8/a", branches=100, wall=10.0))
        status = monitor.status()
        assert status.stale == ()
        assert status.done == 1

    def test_cached_cells_count_without_a_worker(self):
        monitor = SweepMonitor(total_cells=2, clock=FakeClock())
        monitor.observe_cached("gag-8", "a")
        monitor.observe_cached("pag-8", "a")
        status = monitor.status()
        assert status.done == 2
        assert status.cached == 2
        assert status.finished

    def test_throughput_and_eta(self):
        clock = FakeClock()
        monitor = SweepMonitor(total_cells=4, clock=clock)
        clock.advance(2.0)
        monitor.observe(_beat(11, "done", "gag-8/a", branches=2_000_000, wall=2.0))
        status = monitor.status()
        assert status.branches_per_sec == pytest.approx(1e6)
        assert status.eta_seconds == pytest.approx(6.0)  # 3 remaining x 2 s/cell

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepMonitor(total_cells=-1)
        with pytest.raises(ValueError):
            SweepMonitor(total_cells=1, stale_after=0.0)


class TestRendering:
    def test_format_status_parts(self):
        clock = FakeClock()
        monitor = SweepMonitor(total_cells=4, clock=clock)
        monitor.observe_cached("gag-8", "a")
        monitor.observe(_beat(11, "start", "pag-8/a"))
        clock.advance(1.0)
        line = format_status(monitor.status())
        assert "1/4 cells" in line
        assert "1 running" in line
        assert "1 cached" in line
        assert "pag-8/a" in line

    def test_format_status_stale_marker(self):
        clock = FakeClock()
        monitor = SweepMonitor(total_cells=2, stale_after=1.0, clock=clock)
        monitor.observe(_beat(12, "start", "pag-8/a"))
        clock.advance(5.0)
        assert "STALE workers: 12" in format_status(monitor.status())

    def test_follow_printer_rewrites_then_closes(self):
        stream = io.StringIO()
        printer = FollowPrinter(stream)
        monitor = SweepMonitor(total_cells=2, clock=FakeClock())
        printer.update(monitor.status())
        monitor.observe_cached("gag-8", "a")
        printer.update(monitor.status())
        printer.close()
        text = stream.getvalue()
        assert text.count("\r") == 2
        assert text.endswith("\n")

    def test_follow_printer_survives_closed_stream(self):
        stream = io.StringIO()
        printer = FollowPrinter(stream)
        stream.close()
        printer.update(SweepMonitor(total_cells=1, clock=FakeClock()).status())
        printer.close()  # neither call may raise


class TestParallelIntegration:
    def _setup(self):
        from repro.sim.parallel import spec
        from repro.sim.runner import BenchmarkCase
        from repro.trace import synthetic

        cases = [
            BenchmarkCase(
                name=name,
                category="int",
                test_trace=synthetic.loop_trace(iterations=100, trip_count=4, name=name),
            )
            for name in ("a", "b")
        ]
        builders = {"GAg-6": spec("gag-6"), "AT": spec("always-taken")}
        return builders, cases

    def _run(self, n_workers, cache=None):
        from repro.sim.runner import run_matrix

        builders, cases = self._setup()
        monitor = SweepMonitor(total_cells=len(builders) * len(cases))
        done_trajectory = []

        def progress(beat):
            monitor.observe(beat)
            done_trajectory.append(monitor.done)

        matrix = run_matrix(
            builders, cases, n_workers=n_workers, result_cache=cache, progress=progress
        )
        return matrix, monitor, done_trajectory

    def test_in_process_run_emits_heartbeats(self):
        matrix, monitor, trajectory = self._run(n_workers=1)
        assert monitor.done == 4
        assert trajectory == sorted(trajectory)  # monotone
        kinds = [beat.kind for beat in monitor.history]
        assert kinds.count("start") == 4
        assert kinds.count("done") == 4
        done_beats = [b for b in monitor.history if b.kind == "done"]
        assert all(b.branches > 0 for b in done_beats)

    def test_worker_processes_emit_heartbeats(self):
        matrix, monitor, trajectory = self._run(n_workers=2)
        assert monitor.done == 4
        assert monitor.status().finished
        assert trajectory == sorted(trajectory)
        workers = {b.worker for b in monitor.history if b.kind == "done"}
        assert all(worker > 0 for worker in workers)

    def test_cache_hits_emit_cached_beats(self, tmp_path):
        from repro.trace.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        cold, _monitor, _ = self._run(n_workers=1, cache=cache)
        warm, monitor, _ = self._run(n_workers=1, cache=cache)
        assert warm == cold
        assert monitor.status().cached == 4
        assert monitor.status().finished

    def test_progress_none_is_the_default_and_unchanged(self):
        from repro.sim.runner import run_matrix

        builders, cases = self._setup()
        baseline = run_matrix(builders, cases)
        matrix, _monitor, _ = self._run(n_workers=1)
        assert matrix == baseline
