"""Structured logging (repro.obs.log).

Guarantees under test: off by default (and off = no output), text and
JSON renderings, run-id scoping, and that the instrumented seams
(engine, parallel runner, trace suite) emit events only when enabled.
"""

import io
import json

import pytest

from repro.obs import log


@pytest.fixture(autouse=True)
def _reset_logging():
    yield
    log.disable()
    log.set_run_id("")


def _configured(fmt="text"):
    stream = io.StringIO()
    log.configure(stream=stream, fmt=fmt)
    return stream


class TestConfiguration:
    def test_off_by_default_and_silent(self):
        assert not log.is_enabled()
        log.get_logger("test").event("ignored", value=1)  # must not raise or write

    def test_configure_enable_disable(self):
        _configured()
        assert log.is_enabled()
        log.disable()
        assert not log.is_enabled()

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            log.configure(stream=io.StringIO(), fmt="xml")

    def test_disabled_logger_writes_nothing(self):
        stream = _configured()
        log.disable()
        log.get_logger("test").event("after_disable")
        assert stream.getvalue() == ""


class TestRecords:
    def test_text_record_carries_run_id_and_fields(self):
        stream = _configured()
        log.set_run_id("run-abc")
        log.get_logger("sim.engine").event("run_start", scheme="gag-8", records=100)
        line = stream.getvalue().strip()
        assert "[run-abc]" in line
        assert "sim.engine: run_start" in line
        assert "scheme=gag-8" in line
        assert "records=100" in line

    def test_json_records_are_one_object_per_line(self):
        stream = _configured(fmt="json")
        log.get_logger("a").event("one", x=1)
        log.get_logger("b").event("two", y="z")
        records = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [r["event"] for r in records] == ["one", "two"]
        assert records[0]["component"] == "a"
        assert records[0]["x"] == 1
        assert records[1]["y"] == "z"
        assert all(r["ts"] > 0 for r in records)

    def test_new_run_id_is_unique_and_current(self):
        first = log.new_run_id("exp")
        second = log.new_run_id("exp")
        assert first != second
        assert log.current_run_id() == second
        assert second.startswith("exp-")

    def test_closed_stream_never_raises(self):
        stream = io.StringIO()
        log.configure(stream=stream)
        stream.close()
        log.get_logger("test").event("into_the_void")  # swallowed


class TestInstrumentedSeams:
    def test_engine_emits_run_events_when_enabled(self):
        from repro.predictors.registry import make_predictor
        from repro.sim.engine import simulate
        from repro.trace import synthetic

        trace = synthetic.loop_trace(iterations=50, trip_count=4, name="t")
        stream = _configured(fmt="json")
        result = simulate(make_predictor("gag-6"), trace)
        events = [json.loads(line)["event"] for line in stream.getvalue().splitlines()]
        assert events == ["run_start", "run_end"]
        payload = json.loads(stream.getvalue().splitlines()[-1])
        assert payload["branches"] == result.conditional_branches
        assert payload["accuracy"] == pytest.approx(result.accuracy, abs=1e-6)

    def test_engine_result_identical_with_logging_on(self):
        from repro.predictors.registry import make_predictor
        from repro.sim.engine import simulate
        from repro.trace import synthetic

        trace = synthetic.loop_trace(iterations=50, trip_count=4, name="t")
        bare = simulate(make_predictor("gag-6"), trace)
        _configured()
        logged = simulate(make_predictor("gag-6"), trace)
        assert logged == bare

    def test_parallel_runner_emits_matrix_events(self):
        from repro.sim.parallel import spec
        from repro.sim.runner import BenchmarkCase, run_matrix
        from repro.trace import synthetic

        cases = [
            BenchmarkCase(
                name="a",
                category="int",
                test_trace=synthetic.loop_trace(iterations=50, trip_count=4, name="a"),
            )
        ]
        stream = _configured(fmt="json")
        run_matrix({"AT": spec("always-taken")}, cases)
        events = [json.loads(line)["event"] for line in stream.getvalue().splitlines()]
        assert "matrix_start" in events
        assert "matrix_done" in events
