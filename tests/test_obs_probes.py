"""Probe API and metric-probe tests.

The load-bearing property is **equivalence**: attaching any probe (or
all of them at once) must leave the engine's ``SimulationResult``
bit-identical to a probe-free run. Everything else — metric
correctness, interval clock semantics, ProbeSet composition — is
checked on hand-built branch streams where the right answer is obvious.
"""

import pytest

from repro.core.automata import A2
from repro.core.twolevel import GAgPredictor, make_pag
from repro.obs import (
    EventTraceProbe,
    IntervalSeriesProbe,
    Probe,
    ProbeSet,
    StreakHistogramProbe,
    TableStatsProbe,
    TopOffendersProbe,
    WarmupCurveProbe,
)
from repro.obs.profile import PhaseTimer, TimingPredictor
from repro.sim.engine import ContextSwitchConfig, simulate
from repro.trace.events import TraceBuilder
from repro.trace.synthetic import loop_trace, markov_trace


def _mixed_trace(branches=2500, name="obs-mixed"):
    """~10k instructions: loops, a markov site, traps, several sites."""
    builder = TraceBuilder(name=name, dataset="synthetic", source="test")
    for i in range(branches):
        builder.instructions(3)
        builder.conditional(0x1000, i % 5 != 4)            # loop, trip 5
        builder.conditional(0x2000, i % 2 == 0)            # alternating
        builder.conditional(0x3000, (i * 7) % 11 < 6)      # irregular
        if i % 400 == 399:
            builder.trap()
        builder.unconditional(0x4000, target=0x1000)
    return builder.build()


def _full_probe_set(events_path=None):
    probes = ProbeSet(
        [
            IntervalSeriesProbe(1000),
            StreakHistogramProbe(),
            TopOffendersProbe(k=5),
            WarmupCurveProbe(window_branches=64, max_windows=8),
            TableStatsProbe(),
        ]
    )
    if events_path is not None:
        probes.add(EventTraceProbe(events_path, sample_every=50))
    return probes


class TestEquivalence:
    """Probes never change a result — the core contract."""

    @pytest.mark.parametrize("with_switches", [False, True])
    def test_full_probe_set_is_bit_identical(self, with_switches, tmp_path):
        trace = _mixed_trace()
        config = (
            ContextSwitchConfig(interval=2000) if with_switches else None
        )
        bare = simulate(make_pag(8), trace, context_switches=config)
        probed = simulate(
            make_pag(8),
            trace,
            context_switches=config,
            probe=_full_probe_set(tmp_path / "events.jsonl"),
        )
        assert probed == bare

    def test_single_probe_is_bit_identical(self):
        trace = markov_trace(length=4000, p_stay_taken=0.8, p_stay_not_taken=0.6)
        bare = simulate(GAgPredictor(6, A2), trace)
        probed = simulate(GAgPredictor(6, A2), trace, probe=StreakHistogramProbe())
        assert probed == bare

    def test_timing_predictor_is_bit_identical(self):
        trace = _mixed_trace(branches=800)
        bare = simulate(make_pag(8), trace, context_switches=ContextSwitchConfig(2000))
        timed = simulate(
            TimingPredictor(make_pag(8), PhaseTimer()),
            trace,
            context_switches=ContextSwitchConfig(2000),
            probe=_full_probe_set(),
        )
        assert timed == bare

    def test_track_per_site_matches_offender_probe(self):
        trace = _mixed_trace(branches=600)
        offenders = TopOffendersProbe(k=10)
        probed = simulate(make_pag(8), trace, track_per_site=True, probe=offenders)
        table = {row.pc: row for row in offenders.table()}
        assert {pc: row.mispredicts for pc, row in table.items()} == dict(
            probed.per_site_mispredictions
        )
        assert {pc: row.executions for pc, row in table.items()} == dict(
            probed.per_site_executions
        )


class TestEngineCallbacks:
    def test_branch_and_switch_callback_counts(self):
        class Counter(Probe):
            def __init__(self):
                self.branches = 0
                self.switches = 0
                self.started = 0
                self.ended = []

            def on_run_start(self, predictor, trace):
                self.started += 1

            def on_branch(self, pc, predicted, taken, instret):
                self.branches += 1

            def on_context_switch(self, instret):
                self.switches += 1

            def on_run_end(self, result):
                self.ended.append(result)

        trace = _mixed_trace(branches=500)
        counter = Counter()
        result = simulate(
            make_pag(8), trace, context_switches=ContextSwitchConfig(1500), probe=counter
        )
        assert counter.started == 1
        assert counter.branches == result.conditional_branches
        assert counter.switches == result.context_switches > 0
        assert counter.ended == [result]

    def test_interval_clock_fires_monotonic_completed_windows(self):
        class Ticks(Probe):
            interval_instructions = 1000

            def __init__(self):
                self.ticks = []

            def on_interval(self, index, instret):
                self.ticks.append((index, instret))

        trace = _mixed_trace(branches=1000)
        ticks = Ticks()
        simulate(make_pag(8), trace, probe=ticks)
        indexes = [index for index, _ in ticks.ticks]
        assert indexes == sorted(indexes)
        assert len(set(indexes)) == len(indexes)
        for index, instret in ticks.ticks:
            assert instret >= (index + 1) * 1000

    def test_no_interval_ticks_without_window(self):
        class Ticks(Probe):
            def __init__(self):
                self.ticks = 0

            def on_interval(self, index, instret):
                self.ticks += 1

        ticks = Ticks()
        simulate(make_pag(8), loop_trace(iterations=100, trip_count=4), probe=ticks)
        assert ticks.ticks == 0


class TestProbeSet:
    def test_window_adopted_from_members(self):
        probes = ProbeSet([StreakHistogramProbe(), IntervalSeriesProbe(500)])
        assert probes.interval_instructions == 500

    def test_conflicting_windows_raise(self):
        probes = ProbeSet([IntervalSeriesProbe(500)])
        with pytest.raises(ValueError, match="conflicting interval windows"):
            probes.add(IntervalSeriesProbe(1000))

    def test_matching_windows_compose(self):
        probes = ProbeSet([IntervalSeriesProbe(500), IntervalSeriesProbe(500)])
        assert len(probes) == 2
        assert probes.interval_instructions == 500

    def test_fans_out_to_all_members(self):
        first, second = StreakHistogramProbe(), StreakHistogramProbe()
        trace = markov_trace(length=1000, p_stay_taken=0.7, p_stay_not_taken=0.7)
        simulate(GAgPredictor(4, A2), trace, probe=ProbeSet([first, second]))
        assert first.histogram == second.histogram
        assert first.total_mispredicts > 0


class TestStreakHistogram:
    def test_hand_built_stream(self):
        probe = StreakHistogramProbe()
        # Stream: miss, miss, hit, miss, hit, miss, miss, miss (end)
        outcomes = [False, False, True, False, True, False, False, False]
        for predicted_right in outcomes:
            probe.on_branch(0x10, True, predicted_right, 0)
        probe.on_run_end(None)
        assert probe.histogram == {1: 1, 2: 1, 3: 1}
        assert probe.max_streak == 3
        assert probe.total_streaks == 3
        assert probe.total_mispredicts == 6
        assert probe.mean_streak() == 2.0

    def test_total_mispredicts_matches_result(self):
        trace = _mixed_trace(branches=500)
        probe = StreakHistogramProbe()
        result = simulate(make_pag(8), trace, probe=probe)
        assert probe.total_mispredicts == result.mispredictions


class TestIntervalSeries:
    def test_points_partition_the_branch_stream(self):
        trace = _mixed_trace(branches=1200)
        probe = IntervalSeriesProbe(1000)
        result = simulate(make_pag(8), trace, probe=probe)
        assert sum(p.branches for p in probe.points) == result.conditional_branches
        assert sum(p.mispredicts for p in probe.points) == result.mispredictions
        indexes = [p.index for p in probe.points]
        assert indexes == sorted(indexes)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            IntervalSeriesProbe(0)


class TestTopOffenders:
    def test_ranking_and_tiebreak(self):
        probe = TopOffendersProbe(k=2)
        for _ in range(3):
            probe.on_branch(0x30, True, False, 0)   # 3 misses
        for _ in range(2):
            probe.on_branch(0x20, True, False, 0)   # 2 misses
            probe.on_branch(0x10, True, False, 0)   # 2 misses (lower pc)
        probe.on_branch(0x40, True, True, 0)        # hit only
        table = probe.table()
        assert [row.pc for row in table] == [0x30, 0x10]
        assert probe.static_sites == 4
        assert table[0].mispredicts == 3
        assert table[1].accuracy == 0.0

    def test_taken_rate(self):
        probe = TopOffendersProbe(k=1)
        probe.on_branch(0x10, True, True, 0)
        probe.on_branch(0x10, True, False, 0)
        row = probe.table()[0]
        assert row.taken_rate == 0.5
        assert row.executions == 2


class TestWarmupCurve:
    def test_segments_and_positionwise_sum(self):
        trace = _mixed_trace(branches=1000)
        probe = WarmupCurveProbe(window_branches=100, max_windows=4)
        result = simulate(
            make_pag(8), trace, context_switches=ContextSwitchConfig(2000), probe=probe
        )
        assert probe.segments == result.context_switches + 1
        curve = probe.curve()
        assert 0 < len(curve) <= 4
        assert all(w.branches > 0 for w in curve)
        # Early windows see more segments' worth of branches than the cap allows losing.
        assert curve[0].branches >= curve[-1].branches

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            WarmupCurveProbe(window_branches=0)
        with pytest.raises(ValueError):
            WarmupCurveProbe(max_windows=0)
