"""Tests for the Prometheus text exposition (repro.obs.prom)."""

from repro.obs.ledger import LedgerEntry, RunLedger
from repro.obs.prom import format_sample, render_metrics


def _entry(scheme="gag-8", workload="loop", kind="obs", seq=0, correct=900,
           extra=None, phases=None):
    return LedgerEntry(
        kind=kind,
        scheme=scheme,
        workload=workload,
        config_hash=f"{kind}:{scheme}:{workload}",
        seq=seq,
        conditional_branches=1000,
        correct_predictions=correct,
        wall_time=2.5,
        branches_per_sec=400.0,
        phases=phases or {},
        extra=extra or {},
    )


class TestFormatSample:
    def test_no_labels_no_braces(self):
        assert format_sample("m", {}, 3) == "m 3"

    def test_labels_sorted_ints_bare_floats_repr(self):
        line = format_sample("m", {"b": "2", "a": "1"}, 0.5)
        assert line == 'm{a="1",b="2"} 0.5'
        assert format_sample("m", {}, True) == "m 1"

    def test_label_escaping(self):
        line = format_sample("m", {"k": 'a"b\\c\nd'}, 1)
        assert line == 'm{k="a\\"b\\\\c\\nd"} 1'


class TestRenderMetrics:
    def test_empty_is_valid_exposition(self):
        assert render_metrics([]) == "# (no runs recorded)\n"

    def test_headers_and_core_samples(self):
        text = render_metrics([_entry()])
        assert "# HELP repro_runs_total" in text
        assert "# TYPE repro_runs_total counter" in text
        assert "# TYPE repro_run_accuracy_ratio gauge" in text
        assert 'repro_run_accuracy_ratio{kind="obs",scheme="gag-8",workload="loop"} 0.9' in text
        assert "repro_run_wall_seconds" in text
        assert text.endswith("\n")

    def test_latest_entry_per_configuration_wins(self):
        entries = [_entry(seq=0, correct=900), _entry(seq=1, correct=950)]
        text = render_metrics(entries)
        assert 'repro_runs_total{kind="obs",scheme="gag-8",workload="loop"} 2' in text
        assert "0.95" in text
        assert " 0.9\n" not in text  # superseded accuracy absent

    def test_deterministic_double_render(self):
        entries = [
            _entry(scheme="pag-8", phases={"simulate": 1.0, "build": 0.1}),
            _entry(scheme="gag-8", extra={"rss_peak_bytes": 1024}),
        ]
        assert render_metrics(entries) == render_metrics(entries)

    def test_kind_filter(self):
        entries = [_entry(kind="obs"), _entry(kind="matrix", scheme="pag-8")]
        text = render_metrics(entries, kind="matrix")
        assert 'scheme="pag-8"' in text
        assert 'scheme="gag-8"' not in text

    def test_phase_rss_and_span_metrics(self):
        entry = _entry(
            phases={"simulate": 1.25, "build": 0.5},
            extra={
                "rss_peak_bytes": 2048,
                "spans": {"count": 3, "by_name": {
                    "simulate": {"count": 2, "seconds": 1.2},
                    "cell": {"count": 1, "seconds": 2.0},
                }},
            },
        )
        text = render_metrics([entry])
        assert ('repro_run_phase_seconds{kind="obs",phase="simulate",'
                'scheme="gag-8",workload="loop"} 1.25') in text
        assert ('repro_run_peak_rss_bytes{kind="obs",scheme="gag-8",'
                'workload="loop"} 2048') in text
        assert ('repro_run_span_seconds{kind="obs",scheme="gag-8",'
                'span="cell",workload="loop"} 2.0') in text
        assert ('repro_run_span_count{kind="obs",scheme="gag-8",'
                'span="simulate",workload="loop"} 2') in text

    def test_families_without_samples_are_omitted(self):
        text = render_metrics([_entry()])
        assert "repro_run_span_seconds" not in text
        assert "repro_run_peak_rss_bytes" not in text

    def test_accepts_ledger_object(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        ledger.append(_entry(seq=-1))
        text = render_metrics(ledger)
        assert "repro_runs_total" in text
