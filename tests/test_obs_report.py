"""RunReport schema stability, serialisation and profiling-layer tests."""

import json

import pytest

from repro.obs import (
    SCHEMA,
    PhaseTimer,
    RunReport,
    SpanStats,
    TimingPredictor,
    format_report,
    observe,
    run_cprofile,
    write_report,
)
from repro.trace.cache import ResultCache
from repro.trace.synthetic import loop_trace

#: Every top-level key a serialised report must carry, forever.
EXPECTED_KEYS = {
    "schema",
    "scheme",
    "workload",
    "dataset",
    "result",
    "interval_instructions",
    "intervals",
    "streaks",
    "offenders",
    "warmup",
    "tables",
    "timing",
    "cprofile",
    "events_path",
    "extra",
}


@pytest.fixture(scope="module")
def report():
    return observe(
        "gag-6",
        trace=loop_trace(iterations=400, trip_count=4),
        workload="loop",
        interval_instructions=500,
        top_k=3,
    )


class TestRunReport:
    def test_schema_keys(self, report):
        payload = report.to_dict()
        assert set(payload) == EXPECTED_KEYS
        assert payload["schema"] == SCHEMA == "repro.obs/1"

    def test_extra_round_trips(self):
        char_payload = {"schema": "repro.analysis.char/1", "static_sites": 3}
        report = RunReport(
            scheme="gag-8", workload="loop",
            extra={"characterization": char_payload},
        )
        wire = json.loads(json.dumps(report.to_dict()))
        rebuilt = RunReport.from_dict(wire)
        assert rebuilt.extra == {"characterization": char_payload}
        # Older payloads without the key read back as an empty dict.
        legacy = report.to_dict()
        del legacy["extra"]
        assert RunReport.from_dict(legacy).extra == {}

    def test_json_round_trip_is_exact(self, report):
        payload = report.to_dict()
        wire = json.loads(json.dumps(payload))
        rebuilt = RunReport.from_dict(wire)
        assert rebuilt.to_dict() == payload
        assert rebuilt.result == report.result
        assert rebuilt.intervals == report.intervals
        assert rebuilt.offenders == report.offenders
        assert rebuilt.streaks == report.streaks

    def test_streak_keys_survive_json(self, report):
        wire = json.loads(json.dumps(report.to_dict()))
        rebuilt = RunReport.from_dict(wire)
        assert all(isinstance(k, int) for k in rebuilt.streaks)
        assert rebuilt.max_streak == report.max_streak

    def test_result_cache_round_trip(self, report, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.store("obs-report", report.to_dict())
        hit, payload = cache.load("obs-report")
        assert hit
        assert RunReport.from_dict(payload).to_dict() == report.to_dict()

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError, match="schema"):
            RunReport.from_dict({"schema": "something/else", "scheme": "x", "workload": "y"})

    def test_content_is_consistent(self, report):
        assert report.scheme == "gag-6"
        assert report.result.conditional_branches == 400 * 4
        assert sum(p.branches for p in report.intervals) == 400 * 4
        assert sum(l * c for l, c in report.streaks.items()) == report.result.mispredictions
        assert len(report.offenders) <= 3
        assert report.tables  # GAg exposes its pht
        assert {"build", "simulate"} <= set(report.timing)


class TestFormatReport:
    def test_sections_present(self, report):
        text = format_report(report)
        assert "accuracy" in text
        assert "interval series" in text
        assert "mispredict streaks" in text
        assert "hard-to-predict branches" in text
        assert "timing spans" in text

    def test_write_report_text_and_json(self, report, tmp_path):
        json_path = write_report(report, tmp_path / "r.json", fmt="json")
        text_path = write_report(report, tmp_path / "r.txt", fmt="text")
        assert json.loads(json_path.read_text())["schema"] == SCHEMA
        assert "mispredict streaks" in text_path.read_text()
        with pytest.raises(ValueError):
            write_report(report, tmp_path / "r.x", fmt="yaml")


class TestPhaseTimer:
    def test_span_accumulates(self):
        timer = PhaseTimer()
        with timer.span("work"):
            pass
        with timer.span("work"):
            pass
        assert timer.spans["work"].calls == 2
        assert timer.seconds("work") >= 0.0
        assert timer.seconds("absent") == 0.0
        assert list(timer.as_dict()) == ["work"]

    def test_span_stats_round_trip(self):
        stats = SpanStats(seconds=1.5, calls=3)
        assert SpanStats.from_dict(stats.to_dict()) == stats


class TestTimingPredictor:
    def test_delegates_and_times(self):
        from repro.core.twolevel import make_pag

        timer = PhaseTimer()
        inner = make_pag(6)
        proxy = TimingPredictor(inner, timer)
        assert proxy.name == inner.name
        prediction = proxy.predict(0x40, 0)
        proxy.update(0x40, True, 0)
        assert prediction in (True, False)
        assert timer.spans["predict"].calls == 1
        assert timer.spans["update"].calls == 1
        # Attribute probes see through the proxy to the real tables.
        assert proxy.pht is inner.pht
        assert proxy.bht is inner.bht

    def test_run_cprofile_returns_value_and_table(self):
        value, text = run_cprofile(lambda: sum(range(1000)))
        assert value == sum(range(1000))
        assert "function calls" in text
