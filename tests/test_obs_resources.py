"""Tests for per-process resource telemetry (repro.obs.resources)."""

import pytest

from repro.obs import resources
from repro.obs.resources import (
    ResourceSample,
    ResourceSampler,
    counters_from_spans,
    read_resources,
)
from repro.obs.spans import Span


class TestReadResources:
    def test_never_raises_and_is_plausible(self):
        sample = read_resources()
        assert sample.rss_bytes > 0
        assert sample.peak_rss_bytes >= sample.rss_bytes
        assert sample.cpu_user_s >= 0.0
        assert sample.cpu_system_s >= 0.0
        assert sample.source in ("proc", "rusage")

    def test_cpu_total_is_sum(self):
        sample = ResourceSample(
            rss_bytes=1, peak_rss_bytes=1, cpu_user_s=1.5, cpu_system_s=0.25,
            source="proc",
        )
        assert sample.cpu_total_s == pytest.approx(1.75)

    def test_as_args_keys_are_stable(self):
        args = read_resources().as_args()
        assert set(args) == {
            "rss_bytes", "peak_rss_bytes", "cpu_user_s", "cpu_system_s",
            "resource_source",
        }

    def test_rusage_fallback_when_proc_missing(self, monkeypatch):
        monkeypatch.setattr(resources, "_PROC_STATUS", "/nonexistent/status")
        monkeypatch.setattr(resources, "_PROC_STAT", "/nonexistent/stat")
        sample = read_resources()
        assert sample.source == "rusage"
        assert sample.peak_rss_bytes > 0
        assert sample.rss_bytes == sample.peak_rss_bytes  # best rusage offers

    def test_rusage_fallback_on_garbled_proc(self, monkeypatch, tmp_path):
        status = tmp_path / "status"
        status.write_text("VmRSS:\tnot-a-number kB\n", encoding="ascii")
        monkeypatch.setattr(resources, "_PROC_STATUS", str(status))
        sample = read_resources()
        assert sample.source == "rusage"


class TestResourceSampler:
    def test_samples_accumulate_in_order(self):
        sampler = ResourceSampler(pid=42)
        sampler.sample(ts_us=10.0)
        sampler.sample(ts_us=20.0)
        stamps = [ts for ts, _ in sampler.samples]
        assert stamps == [10.0, 20.0]
        assert sampler.peak_rss_bytes > 0

    def test_empty_sampler(self):
        sampler = ResourceSampler(pid=42)
        assert sampler.peak_rss_bytes == 0
        assert sampler.counter_events() == []

    def test_counter_events_shape(self):
        sampler = ResourceSampler(pid=42)
        sampler.sample(ts_us=10.0)
        (event,) = sampler.counter_events()
        assert event["ph"] == "C"
        assert event["name"] == "rss"
        assert event["ts"] == 10.0
        assert event["pid"] == 42
        assert event["args"]["rss_mb"] > 0


class TestCountersFromSpans:
    def _span(self, pid, ts, rss=None, span_id=1):
        args = {} if rss is None else {"rss_bytes": rss}
        return Span(name="cell", cat="sweep", ts=ts, dur=5.0, pid=pid,
                    tid=1, span_id=span_id, args=args)

    def test_spans_without_rss_are_skipped(self):
        assert counters_from_spans([self._span(1, 0.0)]) == []

    def test_counter_stamped_at_span_end_sorted_by_pid_ts(self):
        spans = [
            self._span(2, 100.0, rss=2 * 1024 * 1024, span_id=3),
            self._span(1, 50.0, rss=1024 * 1024, span_id=2),
            self._span(1, 10.0, rss=1024 * 1024, span_id=1),
        ]
        events = counters_from_spans(spans)
        assert [(e["pid"], e["ts"]) for e in events] == [(1, 15.0), (1, 55.0), (2, 105.0)]
        assert events[0]["args"]["rss_mb"] == pytest.approx(1.0)
        assert events[2]["args"]["rss_mb"] == pytest.approx(2.0)

    def test_accepts_dict_form(self):
        span = self._span(7, 0.0, rss=1024 * 1024).to_dict()
        (event,) = counters_from_spans([span])
        assert event["pid"] == 7
        assert event["args"]["rss_mb"] == pytest.approx(1.0)
