"""Tests for cross-process span tracing (repro.obs.spans).

The guarantees under test:

* recorder semantics: nesting, retroactive recording from external
  clock readings, lenient id-anchored popping, reserved args;
* tree integrity: parent/child nesting and containment, monotone
  timestamps across the fork boundary, duplicate detection;
* loss tolerance: a missing (crashed-worker) batch orphans spans into
  roots without corrupting the sweep trace, malformed wire batches are
  dropped whole;
* exactness: Chrome trace-event JSON round-trips spans bit-for-bit,
  and per-cell span totals equal the telemetry phase times;
* the sweep integration: serial and parallel traced sweeps produce
  valid trees whose spans agree with ``CellTelemetry``.
"""

import json

import pytest

from repro.obs.export import load_spans, write_chrome_trace, write_spans
from repro.obs.spans import (
    Span,
    SpanCollector,
    SpanRecorder,
    build_span_tree,
    cell_phase_totals,
    cell_span_summaries,
    disable,
    enable,
    from_wire,
    get_recorder,
    recording,
    span_totals,
    spans_from_chrome,
    summarize_spans,
    to_chrome_trace,
    to_wire,
    validate_chrome_trace,
    validate_span_tree,
)
from repro.sim.parallel import spec
from repro.sim.runner import BenchmarkCase, run_matrix
from repro.trace import synthetic


class FakeClock:
    """Deterministic injectable clock (seconds)."""

    def __init__(self, start=100.0, step=0.001):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def _recorder(**kwargs):
    kwargs.setdefault("clock", FakeClock())
    kwargs.setdefault("pid", 1234)
    return SpanRecorder(**kwargs)


def _sweep_fixture(n_workers=1, tracer=None):
    cases = [
        BenchmarkCase("loopA", "int", synthetic.loop_trace(300, 7, name="loopA")),
        BenchmarkCase("loopB", "fp", synthetic.loop_trace(260, 5, name="loopB")),
    ]
    builders = {"GAg-6": spec("gag-6"), "GAg-8": spec("gag-8")}
    return run_matrix(builders, cases, n_workers=n_workers, tracer=tracer)


class TestSpanRecorder:
    def test_push_pop_nests(self):
        recorder = _recorder()
        outer = recorder.push("outer", cat="sweep")
        inner = recorder.push("inner", cat="phase")
        recorder.pop()  # inner
        recorder.pop()  # outer
        spans = recorder.spans
        assert [span.name for span in spans] == ["inner", "outer"]
        by_name = {span.name: span for span in spans}
        assert by_name["inner"].parent_id == outer
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].span_id == inner
        assert not validate_span_tree(spans)

    def test_explicit_start_end_seconds_are_exact(self):
        recorder = _recorder()
        span_id = recorder.push("cell", start=10.0)
        recorder.pop_through(span_id, end=10.5)
        (span,) = recorder.spans
        assert span.ts == 10.0 * 1e6
        assert span.dur == pytest.approx(0.5 * 1e6)
        assert span.seconds == pytest.approx(0.5)

    def test_record_retroactive_nests_under_open_span(self):
        recorder = _recorder()
        cell = recorder.push("cell", start=1.0)
        phase = recorder.record("trace_load", cat="phase", start=1.0, end=1.25)
        recorder.pop_through(cell, end=2.0)
        assert phase.parent_id == cell
        assert phase.seconds == pytest.approx(0.25)
        assert not validate_span_tree(recorder.spans)

    def test_pop_through_closes_abandoned_children(self):
        recorder = _recorder()
        outer = recorder.push("outer")
        recorder.push("abandoned")
        recorder.push("deeper")
        span = recorder.pop_through(outer, flagged=True)
        assert span.name == "outer"
        assert span.args == {"flagged": True}
        assert recorder.depth == 0
        # all three closed, args only on the target
        assert {s.name for s in recorder.spans} == {"outer", "abandoned", "deeper"}
        assert all(s.args == {} for s in recorder.spans if s.name != "outer")

    def test_pop_through_unknown_id_is_noop(self):
        recorder = _recorder()
        recorder.push("outer")
        assert recorder.pop_through(999) is None
        assert recorder.depth == 1

    def test_pop_if_open_only_pops_top_of_stack(self):
        recorder = _recorder()
        outer = recorder.push("outer")
        inner = recorder.push("inner")
        assert recorder.pop_if_open(outer) is None  # not innermost
        assert recorder.depth == 2
        assert recorder.pop_if_open(inner).name == "inner"
        assert recorder.pop_if_open(inner) is None  # already closed
        assert recorder.depth == 1

    def test_reserved_args_rejected(self):
        recorder = _recorder()
        with pytest.raises(ValueError, match="reserved"):
            recorder.push("bad", span_id=7)
        with pytest.raises(ValueError, match="reserved"):
            recorder.record("bad", start=0.0, end=1.0, parent_id=3)

    def test_pop_empty_stack_raises(self):
        with pytest.raises(RuntimeError):
            _recorder().pop()

    def test_span_context_manager_closes_on_exception(self):
        recorder = _recorder()
        with pytest.raises(RuntimeError, match="boom"):
            with recorder.span("guarded"):
                recorder.push("left-open")
                raise RuntimeError("boom")
        assert recorder.depth == 0
        assert {s.name for s in recorder.spans} == {"guarded", "left-open"}

    def test_drain_clears_completed_keeps_open(self):
        recorder = _recorder()
        recorder.push("open")
        recorder.record("done", start=0.0, end=1.0)
        drained = recorder.drain()
        assert [s.name for s in drained] == ["done"]
        assert recorder.spans == []
        assert recorder.depth == 1

    def test_ids_monotone_across_cells(self):
        recorder = _recorder()
        first = recorder.push("cell")
        recorder.pop()
        recorder.drain()
        second = recorder.push("cell")
        recorder.pop()
        assert second > first  # ids never reused after a drain


class TestActiveRecorder:
    def test_enable_disable_get(self):
        assert get_recorder() is None
        recorder = SpanRecorder()
        assert enable(recorder) is recorder
        assert get_recorder() is recorder
        disable()
        assert get_recorder() is None

    def test_recording_context_manager(self):
        with recording() as recorder:
            assert get_recorder() is recorder
        assert get_recorder() is None


class TestWireProtocol:
    def test_round_trip(self):
        recorder = _recorder()
        with recorder.span("cell", cat="sweep", scheme="GAg"):
            recorder.record("build", cat="phase", start=100.0, end=100.1)
        spans = recorder.spans
        assert from_wire(to_wire(spans)) == spans

    def test_collector_drops_malformed_batch_whole(self):
        collector = SpanCollector()
        good = _recorder()
        good.record("ok", start=0.0, end=1.0)
        collector.ingest_wire(to_wire(good.spans))
        collector.ingest_wire([("torn",)])  # malformed: dropped whole
        assert len(collector) == 1
        assert collector.batches == 1


class TestTreeIntegrity:
    def test_missing_parent_becomes_root(self):
        # A child whose parent batch was lost with a crashed worker.
        orphan = Span(name="simulate", cat="phase", ts=10.0, dur=5.0,
                      pid=99, tid=1, span_id=2, parent_id=1)
        roots, children = build_span_tree([orphan])
        assert roots == [orphan]
        assert children == {}
        assert not validate_span_tree([orphan])  # loss is not corruption

    def test_duplicate_identity_detected(self):
        span = Span(name="x", cat="", ts=0.0, dur=1.0, pid=1, tid=1, span_id=1)
        problems = validate_span_tree([span, span])
        assert any("duplicate" in problem for problem in problems)

    def test_negative_duration_detected(self):
        span = Span(name="x", cat="", ts=0.0, dur=-1.0, pid=1, tid=1, span_id=1)
        assert any("negative" in p for p in validate_span_tree([span]))

    def test_self_parent_detected(self):
        span = Span(name="x", cat="", ts=0.0, dur=1.0, pid=1, tid=1,
                    span_id=1, parent_id=1)
        assert any("own parent" in p for p in validate_span_tree([span]))

    def test_containment_violation_detected(self):
        parent = Span(name="p", cat="", ts=0.0, dur=10.0, pid=1, tid=1, span_id=1)
        escapee = Span(name="c", cat="", ts=5.0, dur=100.0, pid=1, tid=1,
                       span_id=2, parent_id=1)
        assert any("escapes" in p for p in validate_span_tree([parent, escapee]))

    def test_queue_loss_tolerance_partial_sweep(self):
        # Parent sweep span + one worker's cell batch; the other
        # worker "crashed" and never shipped. The trace stays valid.
        parent = _recorder(pid=1)
        sweep = parent.push("sweep", start=0.0)
        parent.pop_through(sweep, end=10.0)
        worker = _recorder(pid=2, clock=FakeClock(start=1.0))
        with worker.span("cell", scheme="GAg", benchmark="a"):
            pass
        collector = SpanCollector()
        collector.ingest(parent.drain())
        collector.ingest_wire(to_wire(worker.drain()))
        assert not validate_span_tree(collector.spans)
        assert len(collector.spans) == 2


class TestAggregation:
    def test_span_totals_and_summary(self):
        recorder = _recorder()
        recorder.record("block", start=0.0, end=0.5)
        recorder.record("block", start=1.0, end=1.25)
        totals = span_totals(recorder.spans)
        assert totals["block"]["count"] == 2
        assert totals["block"]["seconds"] == pytest.approx(0.75)
        summary = summarize_spans(recorder.spans)
        assert summary["count"] == 2
        assert summary["by_name"] == totals

    def test_cell_phase_totals_and_summaries(self):
        recorder = _recorder()
        cell = recorder.push("cell", start=0.0, scheme="GAg", benchmark="a")
        recorder.record("trace_load", cat="phase", start=0.0, end=0.2)
        sim = recorder.push("simulate", cat="phase", start=0.2)
        recorder.record("block", cat="engine", start=0.2, end=0.9)
        recorder.pop_through(sim, end=1.0)
        recorder.pop_through(cell, end=1.0)
        phases = cell_phase_totals(recorder.spans)
        assert phases[("GAg", "a")]["trace_load"] == pytest.approx(0.2)
        assert phases[("GAg", "a")]["simulate"] == pytest.approx(0.8)
        assert "block" not in phases[("GAg", "a")]  # grandchild, not a phase
        summaries = cell_span_summaries(recorder.spans)
        assert summaries[("GAg", "a")]["count"] == 4  # whole subtree


class TestChromeTrace:
    def _spans(self):
        recorder = _recorder()
        with recorder.span("cell", cat="sweep", scheme="GAg", benchmark="a"):
            recorder.record("build", cat="phase", start=100.0, end=100.25,
                            rss_bytes=1_000_000)
        return recorder.spans

    def test_round_trip_exact(self):
        spans = self._spans()
        payload = to_chrome_trace(spans)
        assert spans_from_chrome(payload) == spans

    def test_metadata_and_structure(self):
        payload = to_chrome_trace(self._spans(), label="test sweep")
        assert payload["otherData"]["label"] == "test sweep"
        phases = [event["ph"] for event in payload["traceEvents"]]
        assert phases.count("M") == 1  # one process_name per pid
        assert phases.count("X") == 2
        assert not validate_chrome_trace(payload)

    def test_validator_flags_problems(self):
        assert validate_chrome_trace([]) == ["top level is not a JSON object"]
        assert validate_chrome_trace({}) == ["missing or non-list 'traceEvents'"]
        bad = {"traceEvents": [{"ph": "X", "name": "x", "ts": -1.0, "dur": 1.0,
                                "pid": 1, "tid": 1}]}
        assert any("negative" in p for p in validate_chrome_trace(bad))
        torn = {"traceEvents": [{"name": "no-phase"}]}
        assert any("missing phase" in p for p in validate_chrome_trace(torn))

    def test_json_round_trip_through_disk(self, tmp_path):
        spans = self._spans()
        target = write_chrome_trace(spans, tmp_path / "trace.json")
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert not validate_chrome_trace(payload)
        assert spans_from_chrome(payload) == spans

    def test_spans_jsonl_round_trip(self, tmp_path):
        spans = self._spans()
        target = write_spans(spans, tmp_path / "spans.jsonl")
        assert load_spans(target) == spans


class TestSweepIntegration:
    def _check_phase_agreement(self, collector, matrix):
        totals = cell_phase_totals(collector.spans)
        cells = {(c.scheme, c.benchmark): c for c in matrix.telemetry.cells}
        assert set(totals) == set(cells)
        for key, phases in totals.items():
            for phase, seconds in phases.items():
                reference = cells[key].phases[phase]
                # the acceptance bound is 1%; equality is exact by
                # construction (same clock readings), modulo float µs
                assert seconds == pytest.approx(reference, rel=0.01, abs=1e-5)

    def test_serial_traced_sweep(self):
        collector = SpanCollector()
        matrix = _sweep_fixture(n_workers=1, tracer=collector)
        assert not validate_span_tree(collector.spans)
        assert len(collector.spans) > 0
        names = {span.name for span in collector.spans}
        assert {"sweep", "cell", "simulate", "build"} <= names
        self._check_phase_agreement(collector, matrix)
        # exact Chrome round-trip of a real sweep trace
        assert spans_from_chrome(to_chrome_trace(collector.spans)) == collector.spans

    def test_parallel_traced_sweep_across_fork(self):
        collector = SpanCollector()
        matrix = _sweep_fixture(n_workers=2, tracer=collector)
        assert not validate_span_tree(collector.spans)
        pids = {span.pid for span in collector.spans}
        assert len(pids) > 1, "expected spans from parent and workers"
        self._check_phase_agreement(collector, matrix)
        # fork boundary: perf_counter is CLOCK_MONOTONIC, shared across
        # fork, so every worker span lies inside the parent's sweep span
        (sweep,) = [s for s in collector.spans if s.name == "sweep"]
        for span in collector.spans:
            assert span.ts >= sweep.ts - 0.5
            assert span.end <= sweep.end + 0.5

    def test_untraced_sweep_records_no_spans(self):
        matrix = _sweep_fixture(n_workers=1, tracer=None)
        assert get_recorder() is None
        assert matrix.telemetry.total_cells == 4

    def test_traced_results_bit_identical_to_untraced(self):
        baseline = _sweep_fixture(n_workers=1, tracer=None)
        traced = _sweep_fixture(n_workers=2, tracer=SpanCollector())
        assert traced.cells == baseline.cells

    def test_telemetry_backend_and_rss(self):
        matrix = _sweep_fixture(n_workers=2, tracer=SpanCollector())
        telemetry = matrix.telemetry
        assert telemetry.peak_rss_bytes > 0
        assert sum(telemetry.backend_counts.values()) == 4
        line = telemetry.summary_line()
        assert "backend:" in line
        assert "peak rss" in line
        for cell in telemetry.cells:
            assert cell.rss_peak > 0
            restored = type(cell).from_dict(cell.as_dict())
            assert restored.rss_peak == cell.rss_peak
