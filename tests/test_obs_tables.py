"""Counter hooks on the core tables (PHT, PHT bank, BHT).

The hooks exist for :class:`repro.obs.TableStatsProbe`, but they are a
``repro.core`` feature with their own contract: attached counters must
observe faithfully, and attaching/detaching them must never change
table behaviour.
"""

import pytest

from repro.core.automata import A2, LAST_TIME
from repro.core.pht import PatternHistoryTable, PHTBank, PHTCounters
from repro.core.twolevel import make_pag, make_pap
from repro.obs import TableStatsProbe
from repro.sim.engine import simulate
from repro.trace.synthetic import loop_trace


class TestPHTCounters:
    def test_counts_updates_changes_and_flips(self):
        pht = PatternHistoryTable(2, A2)
        counters = pht.attach_counters()
        # A2 starts strongly taken (4 states); driving pattern 0 not-taken
        # walks it to strongly not-taken — 3 state changes, one of which
        # crosses the prediction boundary. A 4th update is saturated.
        for _ in range(4):
            pht.update(0, False)
        assert counters.updates == 4
        assert counters.state_changes == 3
        assert counters.direction_flips == 1

    def test_detach_restores_fast_path(self):
        pht = PatternHistoryTable(2, A2)
        counters = pht.attach_counters()
        pht.update(0, False)
        pht.detach_counters()
        pht.update(0, False)
        assert pht.counters is None
        assert counters.updates == 1

    def test_counting_never_changes_states(self):
        plain = PatternHistoryTable(3, LAST_TIME)
        counted = PatternHistoryTable(3, LAST_TIME)
        counted.attach_counters()
        outcomes = [(p % 8, p % 3 == 0) for p in range(50)]
        for pattern, taken in outcomes:
            plain.update(pattern, taken)
            counted.update(pattern, taken)
        assert counted.states_snapshot() == plain.states_snapshot()

    def test_occupancy_counts_non_initial_entries(self):
        pht = PatternHistoryTable(3, A2)
        assert pht.occupancy() == 0
        pht.update(0, False)
        pht.update(5, False)
        assert pht.occupancy() == 2

    def test_merge_and_as_dict(self):
        merged = PHTCounters(1, 2, 3).merged_with(PHTCounters(10, 20, 30))
        assert merged == PHTCounters(11, 22, 33)
        assert merged.as_dict() == {
            "updates": 11,
            "state_changes": 22,
            "direction_flips": 33,
        }


class TestPHTBank:
    def test_shared_counters_cover_late_tables(self):
        bank = PHTBank(2, A2)
        bank.table_for(0).update(0, False)
        counters = bank.attach_counters()
        bank.table_for(0).update(0, False)
        bank.table_for(7).update(1, False)  # materialised after attach
        assert counters.updates == 2
        assert bank.occupancy() == 2
        assert len(bank) == 2

    def test_reset_slot_counts(self):
        bank = PHTBank(2, A2)
        bank.table_for(3).update(0, False)
        bank.reset_slot(3)
        bank.reset_slot(99)  # never materialised: no-op
        assert bank.slot_resets == 1
        assert bank.table_for(3).occupancy() == 0


class TestTableStatsProbe:
    def test_pag_snapshot_shape(self):
        trace = loop_trace(iterations=300, trip_count=4)
        probe = TableStatsProbe()
        result = simulate(make_pag(6), trace, probe=probe)
        assert set(probe.snapshot) == {"pht", "bht"}
        pht = probe.snapshot["pht"]
        assert pht["counters"]["updates"] == result.conditional_branches
        assert 0 < pht["occupancy"] <= pht["entries"]
        bht = probe.snapshot["bht"]
        stats = bht["stats"]
        assert stats["hits"] + stats["misses"] == result.conditional_branches
        assert bht["occupancy"] >= 1

    def test_pap_snapshot_covers_the_bank(self):
        trace = loop_trace(iterations=300, trip_count=4)
        probe = TableStatsProbe()
        result = simulate(make_pap(4), trace, probe=probe)
        bank = probe.snapshot["bank"]
        assert bank["counters"]["updates"] == result.conditional_branches
        assert bank["tables_materialised"] >= 1
        assert bank["slot_resets"] >= 0

    def test_counters_detachable_after_run(self):
        trace = loop_trace(iterations=50, trip_count=4)
        predictor = make_pag(6)
        simulate(predictor, trace, probe=TableStatsProbe())
        predictor.pht.detach_counters()
        assert predictor.pht.counters is None


@pytest.mark.parametrize("factory", [lambda: make_pag(6), lambda: make_pap(4)])
def test_counter_hooks_do_not_change_results(factory):
    trace = loop_trace(iterations=400, trip_count=7)
    bare = simulate(factory(), trace)
    probed = simulate(factory(), trace, probe=TableStatsProbe())
    assert probed == bare
