"""Differential tests: predictors vs independently-written oracles.

Each oracle below re-implements a predictor's architecture in the most
naive possible style (dicts, no shared machinery). Hypothesis drives
random branch streams through both implementations and requires
prediction-for-prediction agreement — strong evidence the optimised
table machinery is faithful to the specification.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.automata import A2, LAST_TIME
from repro.core.twolevel import GAgPredictor, PAgPredictor, TwoLevelConfig
from repro.predictors.btb import BTBPredictor


class GAgOracle:
    """Naive GAg: dict-of-patterns, explicit bit list for the history."""

    def __init__(self, k: int) -> None:
        self.k = k
        self.history = [1] * k
        self.states = {}

    def _pattern(self) -> int:
        value = 0
        for bit in self.history:
            value = (value << 1) | bit
        return value

    def predict(self, pc: int) -> bool:
        state = self.states.get(self._pattern(), A2.initial_state)
        return A2.predict(state)

    def update(self, pc: int, taken: bool) -> None:
        pattern = self._pattern()
        state = self.states.get(pattern, A2.initial_state)
        self.states[pattern] = A2.next_state(state, taken)
        self.history.pop(0)
        self.history.append(1 if taken else 0)


class PAgIdealOracle:
    """Naive PAg with an unbounded (ideal) branch history table."""

    def __init__(self, k: int) -> None:
        self.k = k
        self.histories = {}
        self.fresh = set()
        self.states = {}

    def _pattern(self, pc: int) -> int:
        return self.histories.get(pc, (1 << self.k) - 1)

    def predict(self, pc: int) -> bool:
        if pc not in self.histories:
            self.histories[pc] = (1 << self.k) - 1
            self.fresh.add(pc)
        state = self.states.get(self._pattern(pc), A2.initial_state)
        return A2.predict(state)

    def update(self, pc: int, taken: bool) -> None:
        if pc not in self.histories:
            self.histories[pc] = (1 << self.k) - 1
            self.fresh.add(pc)
        pattern = self.histories[pc]
        state = self.states.get(pattern, A2.initial_state)
        self.states[pattern] = A2.next_state(state, taken)
        if pc in self.fresh:
            # Outcome extension through the whole register.
            self.histories[pc] = ((1 << self.k) - 1) if taken else 0
            self.fresh.discard(pc)
        else:
            mask = (1 << self.k) - 1
            self.histories[pc] = ((pattern << 1) | (1 if taken else 0)) & mask


class BTBIdealOracle:
    """Naive per-branch Last-Time with no capacity limit."""

    def __init__(self) -> None:
        self.last = {}

    def predict(self, pc: int) -> bool:
        return self.last.get(pc, True)

    def update(self, pc: int, taken: bool) -> None:
        self.last[pc] = taken


stream = st.lists(
    st.tuples(st.integers(min_value=0, max_value=12), st.booleans()),
    min_size=1,
    max_size=400,
)


class TestGAgAgainstOracle:
    @given(rows=stream, k=st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_prediction_for_prediction_agreement(self, rows, k):
        real = GAgPredictor(k)
        oracle = GAgOracle(k)
        for pc, taken in rows:
            assert real.predict(pc) == oracle.predict(pc)
            real.update(pc, taken)
            oracle.update(pc, taken)


class TestPAgAgainstOracle:
    @given(rows=stream, k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_ideal_bht_agreement(self, rows, k):
        real = PAgPredictor(TwoLevelConfig(history_bits=k, bht_entries=None))
        oracle = PAgIdealOracle(k)
        for pc, taken in rows:
            assert real.predict(pc) == oracle.predict(pc), (pc, taken)
            real.update(pc, taken)
            oracle.update(pc, taken)


class TestBTBAgainstOracle:
    @given(rows=stream)
    @settings(max_examples=60, deadline=None)
    def test_last_time_with_big_table_matches_ideal_oracle(self, rows):
        # 4096 entries, fully associative enough for pcs 0..12: no
        # evictions, so the tagged cache must behave like a plain dict.
        real = BTBPredictor(num_entries=4096, associativity=4, automaton=LAST_TIME)
        oracle = BTBIdealOracle()
        for pc, taken in rows:
            assert real.predict(pc) == oracle.predict(pc)
            real.update(pc, taken)
            oracle.update(pc, taken)
