"""Tests for the parallel/cached experiment-execution layer.

The guarantees under test (see repro/sim/parallel.py):

* bit-identical matrices for every ``n_workers`` value,
* warm result-cache reruns execute zero simulations (visible in the
  run telemetry),
* plain-callable builders keep working alongside picklable specs.
"""

import pickle

import pytest

from repro.predictors.base import TrainingUnavailable
from repro.sim.engine import ContextSwitchConfig
from repro.sim.parallel import PredictorSpec, result_cache_key, spec, trace_digest
from repro.sim.results import RunTelemetry
from repro.sim.runner import BenchmarkCase, run_matrix
from repro.trace import synthetic
from repro.trace.cache import ResultCache


def _case(name, category="int", trip=4, with_training=False):
    test_trace = synthetic.loop_trace(iterations=200, trip_count=trip, name=name)
    training = (
        synthetic.loop_trace(iterations=100, trip_count=trip, name=name)
        if with_training
        else None
    )
    return BenchmarkCase(
        name=name, category=category, test_trace=test_trace, training_trace=training
    )


def _suite():
    return [
        _case("a"),
        _case("b", category="fp", trip=6, with_training=True),
        _case("c", trip=3),
    ]


def _builders():
    return {
        "GAg-6": spec("gag-6"),
        "PAg-6": spec("pag-6"),
        "AT": spec("always-taken"),
        "Profile": spec("profile"),
    }


class TestPredictorSpec:
    def test_builds_predictor(self):
        predictor = spec("gag-6")(None)
        assert predictor.predict(0, 0) in (True, False)

    def test_picklable(self):
        restored = pickle.loads(pickle.dumps(spec("pag-12-a2-512x4")))
        assert restored == spec("pag-12-a2-512x4")
        assert restored(None).name == spec("pag-12-a2-512x4")(None).name

    def test_requires_training(self):
        assert spec("profile").requires_training
        assert spec("gsg-12").requires_training
        assert spec("psg-12-512x4").requires_training
        assert not spec("pag-12").requires_training

    def test_missing_training_raises_training_unavailable(self):
        with pytest.raises(TrainingUnavailable):
            spec("profile")(None)

    def test_cache_key_is_normalised(self):
        assert spec("PAg-12").cache_key == spec("pag-12").cache_key


class TestCacheKey:
    def test_key_sensitivity(self):
        trace = synthetic.loop_trace(iterations=50, trip_count=4, name="t")
        digest = trace_digest(trace)
        base = result_cache_key(digest, "spec:pag-12", None)
        assert base == result_cache_key(digest, "spec:pag-12", None)
        assert base != result_cache_key(digest, "spec:pag-13", None)
        assert base != result_cache_key(digest, "spec:pag-12", ContextSwitchConfig())
        assert base != result_cache_key(digest, "spec:pag-12", None, training_digest="x")
        other = trace_digest(synthetic.loop_trace(iterations=51, trip_count=4, name="t"))
        assert base != result_cache_key(other, "spec:pag-12", None)

    def test_context_switch_params_in_key(self):
        key_a = result_cache_key("d", "b", ContextSwitchConfig(interval=100))
        key_b = result_cache_key("d", "b", ContextSwitchConfig(interval=200))
        assert key_a != key_b


class TestDeterminism:
    def test_parallel_matches_serial_bit_identical(self):
        cases = _suite()
        serial = run_matrix(_builders(), cases, n_workers=1)
        parallel = run_matrix(_builders(), cases, n_workers=4)
        assert parallel == serial
        for scheme in serial.schemes:
            for benchmark, result in serial.cells[scheme].items():
                assert parallel.cells[scheme][benchmark] == result

    def test_parallel_with_context_switches(self):
        cases = _suite()
        config = ContextSwitchConfig(interval=100)
        serial = run_matrix(_builders(), cases, context_switches=config)
        parallel = run_matrix(_builders(), cases, context_switches=config, n_workers=3)
        assert parallel == serial

    def test_lambda_builders_fall_back_in_parallel_mode(self):
        from repro.predictors.static import AlwaysTaken

        builders = {"AT-lambda": lambda t: AlwaysTaken(), "GAg-6": spec("gag-6")}
        cases = _suite()
        serial = run_matrix(builders, cases)
        parallel = run_matrix(builders, cases, n_workers=2)
        assert parallel == serial

    def test_scheme_order_preserved(self):
        cases = _suite()
        matrix = run_matrix(_builders(), cases, n_workers=4)
        # "Profile" appears because case "b" carries a training trace.
        assert matrix.schemes == ["GAg-6", "PAg-6", "AT", "Profile"]
        assert matrix.benchmarks == ["a", "b", "c"]


class TestResultCaching:
    def test_warm_rerun_executes_zero_simulations(self, tmp_path):
        cases = _suite()
        cache = ResultCache(tmp_path)
        cold = run_matrix(_builders(), cases, result_cache=cache)
        assert cold.telemetry.simulations > 0
        assert cold.telemetry.cache_hits == 0
        assert cold.telemetry.cache_misses == cold.telemetry.total_cells

        warm = run_matrix(_builders(), cases, result_cache=cache)
        assert warm == cold
        assert warm.telemetry.simulations == 0
        assert warm.telemetry.cache_misses == 0
        # Every cell resolved from cache: real results as hits, blank
        # (TrainingUnavailable) cells from their cached null sentinel.
        assert warm.telemetry.cache_hits + warm.telemetry.unavailable == (
            warm.telemetry.total_cells
        )

    def test_warm_parallel_rerun(self, tmp_path):
        cases = _suite()
        cache = ResultCache(tmp_path)
        cold = run_matrix(_builders(), cases, n_workers=3, result_cache=cache)
        warm = run_matrix(_builders(), cases, n_workers=3, result_cache=cache)
        assert warm == cold
        assert warm.telemetry.simulations == 0

    def test_unavailable_cells_cached(self, tmp_path):
        cases = [_case("a")]  # no training trace -> Profile cell blank
        cache = ResultCache(tmp_path)
        run_matrix({"Profile": spec("profile")}, cases, result_cache=cache)
        warm = run_matrix({"Profile": spec("profile")}, cases, result_cache=cache)
        assert warm.telemetry.simulations == 0
        assert warm.telemetry.unavailable == 1
        assert warm.accuracy("Profile", "a") is None

    def test_changed_trace_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_matrix({"GAg-6": spec("gag-6")}, [_case("a", trip=4)], result_cache=cache)
        changed = run_matrix(
            {"GAg-6": spec("gag-6")}, [_case("a", trip=5)], result_cache=cache
        )
        assert changed.telemetry.simulations == 1
        assert changed.telemetry.cache_hits == 0

    def test_lambda_builders_bypass_cache(self, tmp_path):
        from repro.predictors.static import AlwaysTaken

        cache = ResultCache(tmp_path)
        builders = {"AT": lambda t: AlwaysTaken()}
        run_matrix(builders, [_case("a")], result_cache=cache)
        rerun = run_matrix(builders, [_case("a")], result_cache=cache)
        assert rerun.telemetry.simulations == 1
        assert rerun.telemetry.uncacheable == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cases = [_case("a")]
        run_matrix({"GAg-6": spec("gag-6")}, cases, result_cache=cache)
        for path in cache.directory.glob("*.json"):
            path.write_text("{not json")
        rerun = run_matrix({"GAg-6": spec("gag-6")}, cases, result_cache=cache)
        assert rerun.telemetry.simulations == 1


class TestTelemetry:
    def test_cell_records_cover_the_grid(self):
        cases = _suite()
        matrix = run_matrix(_builders(), cases)
        telemetry = matrix.telemetry
        assert telemetry.total_cells == len(_builders()) * len(cases)
        assert {cell.source for cell in telemetry.cells} <= {
            "simulated", "cache", "unavailable",
        }
        assert all(cell.wall_time >= 0.0 for cell in telemetry.cells)
        assert telemetry.wall_time > 0.0

    def test_summary_line_and_dict(self):
        matrix = run_matrix(_builders(), [_case("a")])
        line = matrix.telemetry.summary_line()
        assert "simulated" in line and "cache hits" in line
        payload = matrix.telemetry.as_dict()
        assert payload["total_cells"] == matrix.telemetry.total_cells
        assert payload["n_workers"] == 1

    def test_merged_with(self):
        one = RunTelemetry(n_workers=1, simulations=2, wall_time=1.0)
        two = RunTelemetry(n_workers=4, cache_hits=3, wall_time=0.5)
        merged = one.merged_with(two)
        assert merged.n_workers == 4
        assert merged.simulations == 2
        assert merged.cache_hits == 3
        assert merged.wall_time == pytest.approx(1.5)

    def test_figure_driver_attaches_telemetry(self, tmp_path):
        from repro.experiments.figures import figure5

        cases = [_case("a"), _case("b", category="fp", trip=6)]
        cache = ResultCache(tmp_path)
        result = figure5(cases=cases, result_cache=cache, n_workers=2)
        assert result.matrix.telemetry is not None
        assert result.matrix.telemetry.total_cells == 10
        warm = figure5(cases=cases, result_cache=cache)
        assert warm.matrix.telemetry.simulations == 0
        assert warm.matrix == result.matrix


class TestRunnerValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            run_matrix(_builders(), [_case("a")], n_workers=0)
