"""Tests for the per-set variants (SAg / SAs)."""

import pytest

from repro.core.cost import cost_gag, cost_pag
from repro.core.perset import SAgPredictor, SAsPredictor, cost_sag, cost_sas
from repro.core.twolevel import make_gag, make_pag
from repro.sim.engine import simulate
from repro.trace import synthetic
from repro.trace.events import TraceBuilder


class TestSetSelection:
    def test_same_set_shares_history(self):
        sag = SAgPredictor(4, num_sets=4)
        # pcs 0x0 and 0x10 map to set 0 in a 4-set predictor
        # (word-granular: (pc >> 2) % 4).
        sag.update(0x00, False)
        sag.update(0x10, False)
        assert sag.registers[0] == 0b1100

    def test_different_sets_are_isolated(self):
        sag = SAgPredictor(4, num_sets=4)
        sag.update(0x00, False)  # set 0
        sag.update(0x04, True)  # set 1
        assert sag.registers[0] == 0b1110
        assert sag.registers[1] == 0b1111

    def test_validation(self):
        with pytest.raises(ValueError):
            SAgPredictor(4, num_sets=0)
        with pytest.raises(ValueError):
            SAsPredictor(4, num_sets=0)


class TestBehaviouralOrdering:
    def _trace(self):
        sources = [synthetic.loop_source(t) for t in (3, 4, 5, 7, 9, 11)] + [
            synthetic.pattern_source([True, False]),
            synthetic.pattern_source([True, True, False]),
        ]
        return synthetic.interleaved(sources, length=40_000)

    def test_sag_between_gag_and_pag(self):
        trace = self._trace()
        gag = simulate(make_gag(6), trace).accuracy
        sag = simulate(SAgPredictor(6, num_sets=32), trace).accuracy
        pag = simulate(make_pag(6), trace).accuracy
        assert gag < sag <= pag + 0.01

    def test_sas_not_worse_than_sag(self):
        trace = self._trace()
        sag = simulate(SAgPredictor(6, num_sets=32), trace).accuracy
        sas = simulate(SAsPredictor(6, num_sets=32), trace).accuracy
        assert sas >= sag - 0.005

    def test_one_set_degenerates_to_gag(self):
        trace = self._trace()
        gag = simulate(make_gag(6), trace)
        sag = simulate(SAgPredictor(6, num_sets=1), trace)
        assert sag.correct_predictions == gag.correct_predictions

    def test_more_sets_reduce_interference(self):
        trace = self._trace()
        few = simulate(SAgPredictor(6, num_sets=2), trace).accuracy
        many = simulate(SAgPredictor(6, num_sets=64), trace).accuracy
        assert many > few


class TestContextSwitchAndReset:
    def test_context_switch_reinitialises_registers_only(self):
        sag = SAgPredictor(4, num_sets=4)
        sag.update(0x00, False)
        sag.update(0x00, False)
        snapshot = sag.pht.states_snapshot()
        sag.on_context_switch()
        assert sag.registers == [0b1111] * 4
        assert sag.pht.states_snapshot() == snapshot

    def test_reset_clears_tables(self):
        sas = SAsPredictor(3, num_sets=2)
        sas.update(0x00, False)
        sas.update(0x00, False)
        sas.reset()
        for table in sas.tables:
            assert table.predict(0b111) is True  # back to initial taken


class TestPerSetCosts:
    def test_sag_between_gag_and_pag_in_cost(self):
        # Same history length: SAg costs more than GAg (extra registers)
        # but far less than PAg (no tags, no associative lookup).
        k = 12
        assert cost_gag(k) < cost_sag(k, num_sets=16) < cost_pag(512, 4, k)

    def test_sas_cost_scales_with_sets(self):
        assert cost_sas(8, 4) < cost_sas(8, 16)
        assert cost_sas(8, 16) > cost_sag(8, 16)

    def test_one_set_cost_close_to_gag(self):
        # SAg(1 set) = GAg plus one decoder row.
        assert cost_sag(10, 1) == pytest.approx(cost_gag(10) + 1)


class TestNames:
    def test_names_follow_convention(self):
        assert SAgPredictor(10, 16).name == "SAg(SHR(16,,10-sr),1xPHT(2^10,A2))"
        assert SAsPredictor(6, 8).name == "SAs(SHR(8,,6-sr),8xPHT(2^6,A2))"
