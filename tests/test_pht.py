"""Unit tests for pattern history tables."""

import pytest

from repro.core.automata import A2, LAST_TIME
from repro.core.pht import PatternHistoryTable, PHTBank, PresetPatternTable


class TestPatternHistoryTable:
    def test_size_is_two_to_the_k(self):
        assert len(PatternHistoryTable(6, A2)) == 64
        assert len(PatternHistoryTable(12, A2)) == 4096

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(0, A2)

    def test_entries_start_in_initial_state(self):
        pht = PatternHistoryTable(4, A2)
        assert all(state == A2.initial_state for state in pht.states_snapshot())

    def test_initial_prediction_is_taken(self):
        # Paper §4.2: A2 entries initialise to state 3 (predict taken).
        pht = PatternHistoryTable(4, A2)
        assert pht.predict(0b0000) is True

    def test_update_only_touches_addressed_entry(self):
        pht = PatternHistoryTable(4, A2)
        pht.update(0b0101, False)
        pht.update(0b0101, False)
        assert pht.predict(0b0101) is False
        assert pht.predict(0b0100) is True

    def test_independent_patterns_learn_independently(self):
        pht = PatternHistoryTable(2, LAST_TIME)
        pht.update(0b00, False)
        pht.update(0b11, True)
        assert pht.predict(0b00) is False
        assert pht.predict(0b11) is True

    def test_set_state_bounds(self):
        pht = PatternHistoryTable(2, A2)
        pht.set_state(0, 1)
        assert pht.state(0) == 1
        with pytest.raises(ValueError):
            pht.set_state(0, 4)

    def test_reset_restores_initial_states(self):
        pht = PatternHistoryTable(3, A2)
        for pattern in range(8):
            pht.update(pattern, False)
            pht.update(pattern, False)
        pht.reset()
        assert all(state == A2.initial_state for state in pht.states_snapshot())

    def test_storage_bits(self):
        assert PatternHistoryTable(6, A2).storage_bits == 64 * 2
        assert PatternHistoryTable(6, LAST_TIME).storage_bits == 64 * 1


class TestPresetPatternTable:
    def test_preset_directions(self):
        table = PresetPatternTable(3, {0b000: False, 0b111: True})
        assert table.predict(0b000) is False
        assert table.predict(0b111) is True

    def test_unseen_patterns_use_default(self):
        table = PresetPatternTable(3, {}, default_direction=True)
        assert table.predict(0b010) is True
        table = PresetPatternTable(3, {}, default_direction=False)
        assert table.predict(0b010) is False

    def test_update_is_noop(self):
        table = PresetPatternTable(2, {0b01: False})
        for _ in range(5):
            table.update(0b01, True)
        assert table.predict(0b01) is False

    def test_rejects_out_of_range_pattern(self):
        with pytest.raises(ValueError):
            PresetPatternTable(2, {7: True})

    def test_storage_is_one_bit_per_entry(self):
        assert PresetPatternTable(5, {}).storage_bits == 32


class TestPHTBank:
    def test_lazy_materialisation(self):
        bank = PHTBank(4, A2)
        assert len(bank) == 0
        bank.table_for(3)
        assert len(bank) == 1
        bank.table_for(3)
        assert len(bank) == 1

    def test_tables_are_independent(self):
        bank = PHTBank(4, A2)
        bank.table_for(0).update(0b0000, False)
        bank.table_for(0).update(0b0000, False)
        assert bank.table_for(0).predict(0b0000) is False
        assert bank.table_for(1).predict(0b0000) is True

    def test_reset_slot(self):
        bank = PHTBank(4, A2)
        table = bank.table_for(7)
        table.update(0, False)
        table.update(0, False)
        bank.reset_slot(7)
        assert bank.table_for(7).predict(0) is True

    def test_reset_slot_on_missing_slot_is_noop(self):
        bank = PHTBank(4, A2)
        bank.reset_slot(42)  # must not raise
        assert len(bank) == 0

    def test_reset_drops_all(self):
        bank = PHTBank(4, A2)
        bank.table_for(1)
        bank.table_for(2)
        bank.reset()
        assert len(bank) == 0

    def test_peek(self):
        bank = PHTBank(4, A2)
        assert bank.peek(0) is None
        bank.table_for(0)
        assert bank.peek(0) is not None
