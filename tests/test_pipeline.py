"""Tests for the §3.1 pipeline-timing model (speculative history)."""

import pytest

from repro.core.twolevel import make_gag, make_pag, make_pap
from repro.sim.engine import simulate
from repro.sim.pipeline import (
    RecoveryPolicy,
    SpeculativeTwoLevel,
    simulate_delayed,
)
from repro.trace import synthetic


def _mixed_trace(length=20_000):
    sources = [synthetic.loop_source(t) for t in (3, 5, 7)] + [
        synthetic.pattern_source([True, True, False]),
    ]
    return synthetic.interleaved(sources, length=length)


class TestEquivalenceAtZeroLatency:
    @pytest.mark.parametrize(
        "factory",
        [lambda: make_gag(8), lambda: make_pag(8), lambda: make_pap(6)],
        ids=["gag", "pag", "pap"],
    )
    def test_speculative_repair_matches_baseline(self, factory):
        trace = _mixed_trace(8_000)
        baseline = simulate(factory(), trace)
        wrapped = SpeculativeTwoLevel(factory(), RecoveryPolicy.REPAIR)
        speculative = simulate(wrapped, trace)
        assert speculative.correct_predictions == baseline.correct_predictions

    def test_delayed_zero_matches_engine(self):
        trace = _mixed_trace(8_000)
        baseline = simulate(make_pag(8), trace)
        delayed = simulate_delayed(make_pag(8), trace, resolution_latency=0)
        assert delayed.result.correct_predictions == baseline.correct_predictions


class TestStaleHistoryHurts:
    def test_plain_predictor_degrades_with_latency(self):
        trace = _mixed_trace()
        at_zero = simulate_delayed(make_gag(10), trace, 0).result.accuracy
        at_eight = simulate_delayed(make_gag(10), trace, 8).result.accuracy
        assert at_eight < at_zero - 0.02

    def test_speculative_update_recovers_most_of_it(self):
        trace = _mixed_trace()
        latency = 8
        stale = simulate_delayed(make_gag(10), trace, latency).result.accuracy
        speculative = simulate_delayed(
            make_gag(10),
            trace,
            latency,
            speculative=SpeculativeTwoLevel(make_gag(10), RecoveryPolicy.REPAIR),
        ).result.accuracy
        at_zero = simulate_delayed(make_gag(10), trace, 0).result.accuracy
        assert speculative > stale
        # Speculation closes most of the gap to immediate resolution.
        assert (at_zero - speculative) < 0.5 * (at_zero - stale)

    def test_repair_beats_no_recovery(self):
        trace = _mixed_trace()
        latency = 6

        def run(policy):
            return simulate_delayed(
                make_gag(10),
                trace,
                latency,
                speculative=SpeculativeTwoLevel(make_gag(10), policy),
            ).result.accuracy

        assert run(RecoveryPolicy.REPAIR) >= run(RecoveryPolicy.NONE)

    def test_recoveries_counted(self):
        trace = synthetic.biased_trace(2_000, taken_probability=0.5, seed=1)
        wrapper = SpeculativeTwoLevel(make_gag(6), RecoveryPolicy.REPAIR)
        outcome = simulate_delayed(make_gag(6), trace, 4, speculative=wrapper)
        assert outcome.recoveries == outcome.result.mispredictions
        # Every fetch *and* every squash-re-fetch issues a speculative
        # update, so the count is at least one per dynamic branch.
        assert wrapper.speculative_updates >= len(trace)


class TestValidationAndPlumbing:
    def test_negative_latency_rejected(self):
        trace = _mixed_trace(100)
        with pytest.raises(ValueError):
            simulate_delayed(make_gag(4), trace, -1)

    def test_context_switch_passthrough(self):
        wrapper = SpeculativeTwoLevel(make_pag(6))
        wrapper.predict(0xA)
        wrapper.update(0xA, True)
        wrapper.on_context_switch()
        assert wrapper.inner.bht.peek(0xA) is None

    def test_name_mentions_policy(self):
        wrapper = SpeculativeTwoLevel(make_gag(6), RecoveryPolicy.REINITIALISE)
        assert "reinitialise" in wrapper.name

    def test_update_without_predict_tolerated(self):
        wrapper = SpeculativeTwoLevel(make_pag(6))
        wrapper.update(0xB, True)  # engine-discipline violation
        assert wrapper.inner.bht.peek(0xB) is not None

    def test_reinitialise_policy_fills_with_outcome(self):
        wrapper = SpeculativeTwoLevel(make_gag(4), RecoveryPolicy.REINITIALISE)
        # Force a misprediction: initial state predicts taken.
        prediction, context = wrapper.predict_tagged(0xA)
        assert prediction is True
        wrapper.resolve(0xA, False, context)
        assert wrapper.inner.ghr == 0b0000
