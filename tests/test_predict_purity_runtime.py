"""Runtime regression tests for the predict() purity contract.

The static purity lint (repro.check.purity) proves predict() never
writes ``self``; these tests pin the same contract dynamically: calling
predict() any number of extra times must not change any subsequent
prediction, allocation, or statistic. This is what makes speculative /
repeated lookups safe and keeps the parallel runner's results
bit-identical to serial runs.
"""

import pytest

from repro.check.pickling import DEFAULT_SPEC_NAMES, probe_trace, training_trace
from repro.core.twolevel import GAgPredictor, GsharePredictor, make_pag, make_pap
from repro.predictors.btb import btb_a2
from repro.predictors.extensions import tournament_pag_gshare
from repro.predictors.registry import make_predictor
from repro.trace.events import BranchClass


def _run(predictor, trace, extra_predicts=0):
    """Drive the predict/update pairing, optionally with redundant
    predict() calls before each real one; return the predictions."""
    predictions = []
    cond = int(BranchClass.CONDITIONAL)
    for pc, taken, cls, target, _instret, _trap in trace.iter_tuples():
        if cls != cond:
            continue
        for _ in range(extra_predicts):
            predictor.predict(pc, target)
        predictions.append(predictor.predict(pc, target))
        predictor.update(pc, taken, target)
    return predictions


@pytest.fixture(scope="module")
def trace():
    return probe_trace(branches_per_site=150)


@pytest.fixture(scope="module")
def training():
    return training_trace()


@pytest.mark.parametrize("name", sorted(DEFAULT_SPEC_NAMES))
def test_redundant_predicts_are_invisible(name, trace, training):
    baseline = _run(make_predictor(name, training), trace)
    noisy = _run(make_predictor(name, training), trace, extra_predicts=3)
    assert noisy == baseline


class TestNoAllocationOnPredict:
    """predict() must not even touch the first-level structures."""

    def test_pag_predict_does_not_allocate_bht_entry(self):
        pag = make_pag(4)
        pag.predict(0xA)
        assert pag.bht.peek(0xA) is None
        assert pag.bht.stats.accesses == 0

    def test_pag_predict_does_not_tick_lru_or_stats(self):
        pag = make_pag(4, bht_entries=8, bht_associativity=2)
        pag.update(0xA, True)
        before = (pag.bht.stats.hits, pag.bht.stats.misses, pag.bht.peek(0xA).lru)
        for _ in range(5):
            pag.predict(0xA)
        after = (pag.bht.stats.hits, pag.bht.stats.misses, pag.bht.peek(0xA).lru)
        assert after == before

    def test_pap_predict_does_not_materialise_pattern_tables(self):
        pap = make_pap(4)
        pap.predict(0xA)
        assert len(pap.bank) == 0

    def test_btb_predict_does_not_allocate(self):
        btb = btb_a2(num_entries=8, associativity=2)
        assert btb.predict(0x10) is True  # A2 initial state predicts taken
        assert btb.bht.peek(0x10) is None
        assert btb.bht.stats.accesses == 0

    def test_gag_predict_does_not_move_history(self):
        gag = GAgPredictor(6)
        before = gag.ghr
        gag.predict(0x100)
        assert gag.ghr == before

    def test_gshare_predict_does_not_move_history(self):
        gshare = GsharePredictor(6)
        before = gshare.ghr
        gshare.predict(0x100)
        assert gshare.ghr == before

    def test_tournament_predict_does_not_count_disagreements(self):
        tournament = tournament_pag_gshare(4, 4, chooser_bits=4)
        for pc in range(0, 64, 4):
            tournament.predict(pc)
        assert tournament.disagreements == 0


class TestEvictionPolicyUnderPurity:
    """The PAp reset-on-evict policy must survive the pure-predict
    refactor: the decision happens at update() time, and predict() on a
    would-evict miss anticipates it without mutating anything."""

    def test_predict_on_would_evict_miss_leaves_victim_resident(self):
        pap = make_pap(2, bht_entries=1, bht_associativity=1)
        for _ in range(4):
            pap.predict(0xA)
            pap.update(0xA, False)
        entry_before = pap.bht.peek(0xA)
        pap.predict(0xB)  # would evict 0xA, but must not
        assert pap.bht.peek(0xA) is entry_before
        assert pap.bht.peek(0xB) is None
