"""Tests for the predictability characterization engine.

The closed-form pins are the load-bearing part: the warmup-skip
estimator convention (history-context tables only count records whose
register is fully defined) is what makes them *exact*, so a failure
here means the estimator semantics drifted, not that a tolerance was
too tight.
"""

import json
import math
import random

import pytest

from repro.analysis.predictability import (
    CHAR_SCHEMA,
    CLUSTER_NAMES,
    DEFAULT_MAX_K,
    DEFAULT_SCHEMES,
    CharacterizationReport,
    H2PCriteria,
    attribute_scheme,
    binary_entropy,
    characterization_counts,
    characterize,
    format_characterization,
)
from repro.core.twolevel import make_pag
from repro.sim.engine import simulate
from repro.trace import synthetic
from repro.trace.events import TraceBuilder


def _entropy_values(curve):
    return [point.entropy_bits for point in curve]


class TestClosedFormPins:
    def test_periodic_pattern_zero_entropy_at_period_bits(self):
        # Period-7 pattern: 3 history bits pin every outcome exactly.
        pattern = [True, True, False, True, False, False, True]
        trace = synthetic.periodic_trace(pattern, repeats=600)
        report = characterize(trace, schemes=(), include_interference=False)
        for curve in (report.local_curve, report.global_curve):
            for point in curve:
                if point.k >= 3:
                    assert point.entropy_bits == 0.0
                    assert point.ideal_accuracy == 1.0
                else:
                    assert point.entropy_bits > 0.0

    def test_curves_monotone_non_increasing(self):
        trace = synthetic.markov_trace(8000, 0.85, 0.75, seed=3)
        report = characterize(trace, schemes=(), include_interference=False)
        for curve in (report.local_curve, report.global_curve):
            values = _entropy_values(curve)
            assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
            ideals = [point.ideal_accuracy for point in curve]
            assert all(a <= b + 1e-12 for a, b in zip(ideals, ideals[1:]))

    def test_bernoulli_outcome_entropy_is_binary_entropy(self):
        trace = synthetic.biased_trace(20_000, taken_probability=0.7, seed=1)
        report = characterize(trace, schemes=(), include_interference=False)
        # One site: whole-trace outcome entropy IS the binary entropy of
        # the empirical taken rate, exactly.
        assert report.outcome_entropy_bits == pytest.approx(
            binary_entropy(report.taken_rate), rel=1e-12
        )
        # And the empirical rate is near the generating parameter.
        assert abs(report.taken_rate - 0.7) < 0.02
        assert abs(report.outcome_entropy_bits - binary_entropy(0.7)) < 0.02
        # i.i.d. outcomes: history buys (almost) nothing.
        assert report.global_curve[-1].entropy_bits > 0.8 * report.outcome_entropy_bits

    def test_markov_conditional_entropy_matches_analytic(self):
        trace = synthetic.markov_trace(30_000, 0.9, 0.9, seed=2)
        report = characterize(trace, schemes=(), include_interference=False)
        analytic = binary_entropy(0.9)  # symmetric chain: H(next|prev)
        assert abs(report.global_curve[0].entropy_bits - 1.0) < 0.01
        for point in report.global_curve[1:]:
            # Only the most recent bit matters; deeper history can only
            # shave entropy via finite-sample overfitting.
            assert abs(point.entropy_bits - analytic) < 0.05

    def test_markov_k1_entropy_exact_against_independent_count(self):
        max_k = 4
        trace = synthetic.markov_trace(10_000, 0.8, 0.7, seed=5)
        report = characterize(
            trace, max_k=max_k, schemes=(), include_interference=False
        )
        # Recount H(outcome | previous outcome) independently, honouring
        # the warmup-skip convention (first max_k conditionals skipped).
        counts = {}
        history = 0
        seen = 0
        for record in trace:
            if seen >= max_k:
                key = history & 1
                bucket = counts.setdefault(key, [0, 0])
                bucket[1 if record.taken else 0] += 1
            history = (history << 1) | (1 if record.taken else 0)
            seen += 1
        total = sum(n0 + n1 for n0, n1 in counts.values())
        expected = sum(
            (n0 + n1) / total * binary_entropy(n1 / (n0 + n1))
            for n0, n1 in counts.values()
        )
        assert report.global_curve[1].entropy_bits == pytest.approx(
            expected, rel=1e-12
        )


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def mixed_trace(self):
        rng = random.Random(11)
        builder = TraceBuilder()
        for i in range(3000):
            builder.conditional(0x100, rng.random() < 0.5)
            builder.conditional(0x200, i % 3 != 0)
            builder.conditional(0x300, True)
            if i % 5 == 0:
                builder.conditional(0x400, rng.random() < 0.85)
        return builder.build()

    def test_counts_bit_identical_across_backends_and_blocks(self, mixed_trace):
        reference = characterization_counts(mixed_trace, backend="python")
        for backend in ("python", "vectorized"):
            for block_size in (1, 7, 64, 1000, None):
                counts = characterization_counts(
                    mixed_trace, backend=backend, block_size=block_size
                )
                assert counts == reference

    def test_reports_bit_identical(self, mixed_trace):
        python = characterize(
            mixed_trace, backend="python", schemes=("gag-8",)
        )
        vectorized = characterize(
            mixed_trace, backend="vectorized", schemes=("gag-8",), block_size=77
        )
        left, right = python.to_dict(), vectorized.to_dict()
        # The backend and block-size labels legitimately differ.
        for key in ("backend", "block_size"):
            left.pop(key), right.pop(key)
        assert left == right

    def test_unknown_backend_rejected(self, mixed_trace):
        with pytest.raises(ValueError):
            characterization_counts(mixed_trace, backend="cuda")

    def test_max_k_validated(self, mixed_trace):
        with pytest.raises(ValueError):
            characterization_counts(mixed_trace, max_k=0)
        with pytest.raises(ValueError):
            characterization_counts(mixed_trace, max_k=21)


class TestH2P:
    def test_adversarial_hard_branch_flagged(self):
        rng = random.Random(7)
        builder = TraceBuilder()
        for _ in range(4000):
            builder.conditional(0xDEAD, rng.random() < 0.5)  # genuinely random
            builder.conditional(0xB1A5, True)  # fully biased
            builder.conditional(0x100F, False)
        report = characterize(
            builder.build(), schemes=(), include_interference=False
        )
        by_pc = {site.pc: site for site in report.sites}
        assert by_pc[0xDEAD].h2p
        assert not by_pc[0xB1A5].h2p
        assert not by_pc[0x100F].h2p
        assert report.h2p_sites == 1
        assert report.h2p_dynamic_share == pytest.approx(1 / 3, abs=1e-3)
        assert by_pc[0xDEAD].cluster == "hard"
        assert by_pc[0xB1A5].cluster == "biased"

    def test_rare_branch_not_flagged(self):
        # Random outcomes, but below min_executions: not an H2P.
        rng = random.Random(9)
        builder = TraceBuilder()
        for i in range(2000):
            builder.conditional(0xA, i % 2 == 0)
            if i < 30:
                builder.conditional(0xB, rng.random() < 0.5)
        report = characterize(
            builder.build(), schemes=(), include_interference=False
        )
        by_pc = {site.pc: site for site in report.sites}
        assert not by_pc[0xB].h2p

    def test_criteria_travel_in_report(self):
        trace = synthetic.loop_trace(iterations=100, trip_count=4)
        criteria = H2PCriteria(min_executions=10)
        report = characterize(
            trace, schemes=(), include_interference=False, h2p=criteria
        )
        assert report.h2p_criteria.min_executions == 10
        assert report.to_dict()["h2p"]["criteria"]["min_executions"] == 10


class TestClustering:
    def test_every_site_gets_a_known_cluster(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(3), synthetic.alternating_source()],
            length=6000,
        )
        report = characterize(trace, schemes=(), include_interference=False)
        assert report.sites
        for site in report.sites:
            assert site.cluster in CLUSTER_NAMES
        assert sum(c.sites for c in report.clusters) == report.static_sites
        assert sum(c.dynamic_share for c in report.clusters) == pytest.approx(1.0)

    def test_cluster_order_is_schema_order(self):
        trace = synthetic.loop_trace(iterations=200, trip_count=4)
        report = characterize(trace, schemes=(), include_interference=False)
        assert tuple(c.name for c in report.clusters) == CLUSTER_NAMES


class TestAttribution:
    def test_accuracy_matches_engine(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(t) for t in (3, 5)], length=6000
        )
        attribution = attribute_scheme(make_pag(8), trace, scheme="pag-8")
        engine = simulate(make_pag(8), trace)
        assert attribution.correct == engine.correct_predictions
        assert attribution.executions == engine.conditional_branches

    def test_winner_table_covers_every_scheme(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(3), synthetic.alternating_source()],
            length=4000,
        )
        report = characterize(trace, include_interference=False)
        assert [entry["scheme"] for entry in report.schemes] == list(DEFAULT_SCHEMES)
        for cluster in report.clusters:
            if cluster.sites:
                assert set(cluster.accuracy) == set(DEFAULT_SCHEMES)
                assert cluster.winner in DEFAULT_SCHEMES

    def test_breakdown_totals_consistent(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(t) for t in (3, 7)], length=5000
        )
        report = characterize(
            trace, schemes=("gag-8",), include_interference=False
        )
        (entry,) = report.schemes
        breakdown = entry["breakdown"]
        assert breakdown["total_misses"] == (
            breakdown["cold"] + breakdown["post_flush"] + breakdown["steady"]
        )
        assert entry["correct"] + breakdown["total_misses"] == entry["executions"]


class TestReportSchema:
    def test_json_round_trip_exact(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(3), synthetic.alternating_source()],
            length=3000,
        )
        report = characterize(trace, schemes=("gag-8", "tournament"))
        payload = report.to_dict()
        assert payload["schema"] == CHAR_SCHEMA
        rebuilt = CharacterizationReport.from_dict(
            json.loads(json.dumps(payload))
        )
        assert rebuilt.to_dict() == payload

    def test_every_top_level_key_present(self):
        trace = synthetic.loop_trace(iterations=50, trip_count=4)
        payload = characterize(trace, schemes=()).to_dict()
        assert set(payload) == {
            "schema", "workload", "dataset", "backend", "max_k", "block_size",
            "conditional_branches", "static_sites", "taken_rate",
            "outcome_entropy_bits", "global_curve", "local_curve", "h2p",
            "clustering", "sites", "clusters", "schemes", "interference",
        }
        assert len(payload["global_curve"]) == DEFAULT_MAX_K + 1

    def test_interference_block_present_when_enabled(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(3)] * 2, length=2000
        )
        report = characterize(trace, schemes=())
        assert set(report.interference) >= {
            "history_bits", "first_level_pollution_rate", "bht_hit_rate",
        }

    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError):
            CharacterizationReport.from_dict({"schema": "repro.obs/1"})

    def test_format_renders_all_sections(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(3), synthetic.alternating_source()],
            length=3000,
        )
        text = format_characterization(
            characterize(trace, schemes=("gag-8",))
        )
        assert "history sensitivity" in text
        assert "cluster winner table" in text
        assert "scheme attribution" in text
        assert "interference" in text


class TestEdgeCases:
    def test_empty_trace(self):
        report = characterize(
            TraceBuilder().build(), schemes=(), include_interference=False
        )
        assert report.conditional_branches == 0
        assert report.static_sites == 0
        assert report.outcome_entropy_bits == 0.0

    def test_entropy_helper_bounds(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.5) == 1.0
        assert binary_entropy(0.25) == pytest.approx(
            -(0.25 * math.log2(0.25) + 0.75 * math.log2(0.75))
        )

    def test_short_trace_sites_fall_back_to_bias(self):
        # Fewer occurrences than max_k: history tables stay empty, the
        # site still characterizes via its outcome entropy.
        builder = TraceBuilder()
        for _ in range(3):
            builder.conditional(0xA, True)
        report = characterize(
            builder.build(), max_k=8, schemes=(), include_interference=False
        )
        (site,) = report.sites
        assert site.history_counted == 0
        assert site.cluster == "biased"
