"""Tests for the comparison predictors (BTB designs + static schemes)."""

import pytest

from repro.core.automata import A2, LAST_TIME
from repro.predictors.btb import BTBPredictor, btb_a2, btb_last_time
from repro.predictors.static import (
    BTFN,
    AlwaysNotTaken,
    AlwaysTaken,
    ProfileGuided,
    profile_directions,
)
from repro.sim.engine import simulate
from repro.trace import synthetic
from repro.trace.events import TraceBuilder


class TestBTB:
    def test_predicts_taken_on_cold_entry(self):
        # Allocation initialises the automaton in its taken-biased state.
        assert btb_a2().predict(0x1234) is True

    def test_counter_learns_bias(self):
        btb = btb_a2()
        for _ in range(4):
            btb.predict(0xA)
            btb.update(0xA, False)
        assert btb.predict(0xA) is False

    def test_last_time_flips_immediately(self):
        btb = btb_last_time()
        btb.predict(0xA)
        btb.update(0xA, False)
        assert btb.predict(0xA) is False
        btb.update(0xA, True)
        assert btb.predict(0xA) is True

    def test_a2_hysteresis_beats_lt_on_glitchy_stream(self):
        # Long taken runs with isolated not-taken glitches: A2 pays one
        # miss per glitch, Last-Time pays two (the glitch and the next).
        trace = synthetic.loop_trace(iterations=400, trip_count=10)
        a2 = simulate(btb_a2(), trace).accuracy
        lt = simulate(btb_last_time(), trace).accuracy
        assert a2 > lt

    def test_no_pattern_level_caps_loop_accuracy(self):
        # trip-count-4 loop: a counter mispredicts every exit -> 75 %.
        trace = synthetic.loop_trace(iterations=500, trip_count=4)
        accuracy = simulate(btb_a2(), trace).accuracy
        assert accuracy == pytest.approx(0.75, abs=0.01)

    def test_capacity_eviction(self):
        btb = BTBPredictor(num_entries=4, associativity=1, automaton=A2)
        for pc in range(16):
            btb.predict(pc)
            btb.update(pc, False)
        # Far more misses than hits under thrashing.
        assert btb.bht.stats.misses > btb.bht.stats.hits

    def test_context_switch_flushes(self):
        btb = btb_a2()
        btb.predict(0xA)
        btb.update(0xA, False)
        btb.on_context_switch()
        assert btb.bht.peek(0xA) is None

    def test_names(self):
        assert btb_a2().name == "BTB(BHT(512,4,A2),,)"
        assert btb_last_time().name == "BTB(BHT(512,4,LT),,)"
        assert BTBPredictor(256, 1, LAST_TIME).name == "BTB(BHT(256,1,LT),,)"


class TestAlwaysTakenNotTaken:
    def test_always_taken(self):
        predictor = AlwaysTaken()
        assert predictor.predict(1) is True
        predictor.update(1, False)
        assert predictor.predict(1) is True

    def test_always_not_taken(self):
        assert AlwaysNotTaken().predict(1) is False

    def test_accuracy_equals_taken_rate(self):
        trace = synthetic.biased_trace(5000, taken_probability=0.7, seed=9)
        accuracy = simulate(AlwaysTaken(), trace).accuracy
        assert accuracy == pytest.approx(0.7, abs=0.03)


class TestBTFN:
    def test_backward_predicted_taken(self):
        assert BTFN().predict(pc=0x1000, target=0x0F00) is True

    def test_forward_predicted_not_taken(self):
        assert BTFN().predict(pc=0x1000, target=0x1100) is False

    def test_unknown_target_uses_default(self):
        assert BTFN().predict(pc=0x1000, target=0) is True
        assert BTFN(unknown_direction=False).predict(pc=0x1000, target=0) is False

    def test_loop_trace_one_miss_per_iteration(self):
        # Loop branches are backward: BTFN only misses the exits.
        trace = synthetic.loop_trace(iterations=100, trip_count=10)
        result = simulate(BTFN(), trace)
        assert result.mispredictions == 100


class TestProfileGuided:
    def test_profile_directions_majority(self):
        builder = TraceBuilder()
        for i in range(10):
            builder.conditional(0xA, i < 7)  # 7 taken, 3 not
            builder.conditional(0xB, i < 3)  # 3 taken, 7 not
        directions = profile_directions(builder.build())
        assert directions[0xA] is True
        assert directions[0xB] is False

    def test_tie_resolves_taken(self):
        builder = TraceBuilder()
        builder.conditional(0xA, True)
        builder.conditional(0xA, False)
        assert profile_directions(builder.build())[0xA] is True

    def test_unprofiled_branch_uses_default(self):
        predictor = ProfileGuided({0xA: False}, default_direction=True)
        assert predictor.predict(0xA) is False
        assert predictor.predict(0xB) is True

    def test_never_adapts(self):
        predictor = ProfileGuided({0xA: True})
        for _ in range(10):
            predictor.update(0xA, False)
        assert predictor.predict(0xA) is True

    def test_trained_on_matches_manual_profile(self):
        trace = synthetic.biased_trace(1000, taken_probability=0.8, seed=2)
        predictor = ProfileGuided.trained_on(trace)
        assert predictor.num_profiled_branches == 1
        accuracy = simulate(predictor, trace).accuracy
        assert accuracy == pytest.approx(0.8, abs=0.04)

    def test_cross_dataset_profiling(self):
        train = synthetic.biased_trace(2000, taken_probability=0.9, seed=1)
        test = synthetic.biased_trace(2000, taken_probability=0.9, seed=99, pc=0x3000)
        predictor = ProfileGuided.trained_on(train)
        accuracy = simulate(predictor, test).accuracy
        assert accuracy == pytest.approx(0.9, abs=0.03)
