"""Property-based tests (hypothesis) on core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.automata import A1, A2, A3, A4, LAST_TIME, saturating_counter
from repro.core.history import CacheBHT, IdealBHT, history_fill, history_mask, history_update
from repro.core.pht import PatternHistoryTable
from repro.core.twolevel import make_gag, make_pag, make_pap
from repro.predictors.btb import btb_a2
from repro.sim.engine import ContextSwitchConfig, simulate
from repro.trace.events import BranchClass, TraceBuilder
from repro.trace.io import dumps, loads

ALL_AUTOMATA = [LAST_TIME, A1, A2, A3, A4, saturating_counter(3)]

outcome_lists = st.lists(st.booleans(), min_size=1, max_size=200)


class TestAutomatonProperties:
    @given(outcomes=outcome_lists)
    def test_states_always_in_range(self, outcomes):
        for spec in ALL_AUTOMATA:
            state = spec.initial_state
            for outcome in outcomes:
                state = spec.next_state(state, outcome)
                assert 0 <= state < spec.num_states

    @given(outcomes=st.lists(st.booleans(), min_size=8, max_size=100))
    def test_constant_streams_eventually_predicted(self, outcomes):
        # After enough identical outcomes every automaton must agree.
        for spec in ALL_AUTOMATA:
            for constant in (True, False):
                state = spec.initial_state
                for _ in range(spec.num_states):
                    state = spec.next_state(state, constant)
                assert spec.predict(state) is constant

    @given(count=st.integers(min_value=1, max_value=50))
    def test_counter_monotone_in_takens(self, count):
        state = 0
        previous = 0
        for _ in range(count):
            state = A2.next_state(state, True)
            assert state >= previous
            previous = state


class TestHistoryRegisterProperties:
    @given(
        bits=st.integers(min_value=1, max_value=24),
        outcomes=outcome_lists,
    )
    def test_value_always_within_mask(self, bits, outcomes):
        value = history_fill(True, bits)
        for outcome in outcomes:
            value = history_update(value, outcome, bits)
            assert 0 <= value <= history_mask(bits)

    @given(
        bits=st.integers(min_value=1, max_value=16),
        outcomes=st.lists(st.booleans(), min_size=16, max_size=64),
    )
    def test_register_holds_exactly_last_k_outcomes(self, bits, outcomes):
        value = 0
        for outcome in outcomes:
            value = history_update(value, outcome, bits)
        expected = 0
        for outcome in outcomes[-bits:]:
            expected = (expected << 1) | (1 if outcome else 0)
        assert value == expected


class TestBHTProperties:
    @given(
        pcs=st.lists(st.integers(min_value=0, max_value=2_000), min_size=1, max_size=300),
        entries_log=st.integers(min_value=2, max_value=6),
        assoc_log=st.integers(min_value=0, max_value=2),
    )
    def test_cache_invariants(self, pcs, entries_log, assoc_log):
        entries = 1 << entries_log
        assoc = min(1 << assoc_log, entries)
        bht = CacheBHT(entries, assoc)
        for pc in pcs:
            entry, _hit = bht.access(pc)
            # The returned entry must be resident and findable.
            assert entry.valid
            assert bht.peek(pc) is entry
        assert bht.occupancy <= entries
        stats = bht.stats
        assert stats.hits + stats.misses == len(pcs)
        assert stats.evictions <= stats.misses

    @given(pcs=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=200))
    def test_ideal_bht_agrees_with_reference_dict(self, pcs):
        bht = IdealBHT(init_value=7)
        seen = set()
        for pc in pcs:
            _entry, hit = bht.access(pc)
            assert hit == (pc in seen)
            seen.add(pc)
        assert bht.num_entries == len(seen)


class TestPHTProperties:
    @given(
        bits=st.integers(min_value=1, max_value=8),
        updates=st.lists(
            st.tuples(st.integers(min_value=0, max_value=255), st.booleans()),
            max_size=200,
        ),
    )
    def test_only_addressed_entries_change(self, bits, updates):
        pht = PatternHistoryTable(bits, A2)
        reference = {}
        mask = (1 << bits) - 1
        for pattern, outcome in updates:
            pattern &= mask
            state = reference.get(pattern, A2.initial_state)
            reference[pattern] = A2.next_state(state, outcome)
            pht.update(pattern, outcome)
        snapshot = pht.states_snapshot()
        for pattern in range(1 << bits):
            assert snapshot[pattern] == reference.get(pattern, A2.initial_state)


class TestTraceRoundTripProperties:
    record_strategy = st.tuples(
        st.integers(min_value=0, max_value=2**40),  # pc
        st.booleans(),  # taken
        st.sampled_from(list(BranchClass)),  # class
        st.integers(min_value=0, max_value=2**40),  # target
        st.integers(min_value=0, max_value=50),  # work
        st.booleans(),  # trap before
    )

    @given(rows=st.lists(record_strategy, max_size=100))
    @settings(max_examples=50)
    def test_binary_round_trip_lossless(self, rows):
        builder = TraceBuilder(name="prop", dataset="d", source="hypothesis")
        for pc, taken, cls, target, work, trap in rows:
            if trap:
                builder.trap()
            builder.branch(pc, taken, cls, target=target, work=work)
        trace = builder.build()
        restored = loads(dumps(trace))
        assert restored.meta == trace.meta
        assert list(restored.iter_tuples()) == list(trace.iter_tuples())


class TestPredictorEngineProperties:
    predictors = [
        lambda: make_gag(5),
        lambda: make_pag(5, bht_entries=16, bht_associativity=2),
        lambda: make_pap(3, bht_entries=8, bht_associativity=2),
        btb_a2,
    ]

    @given(
        rows=st.lists(
            st.tuples(st.integers(min_value=0, max_value=40), st.booleans()),
            min_size=1,
            max_size=300,
        ),
        use_switches=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_stream_simulates_cleanly(self, rows, use_switches):
        builder = TraceBuilder()
        for pc, taken in rows:
            builder.conditional(pc, taken, work=3)
        trace = builder.build()
        config = ContextSwitchConfig(interval=100) if use_switches else None
        for factory in self.predictors:
            result = simulate(factory(), trace, context_switches=config)
            assert result.conditional_branches == len(rows)
            assert 0 <= result.correct_predictions <= len(rows)

    @given(
        rows=st.lists(
            st.tuples(st.integers(min_value=0, max_value=10), st.booleans()),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_simulation_deterministic(self, rows):
        builder = TraceBuilder()
        for pc, taken in rows:
            builder.conditional(pc, taken)
        trace = builder.build()
        first = simulate(make_pag(4), trace)
        second = simulate(make_pag(4), trace)
        assert first.correct_predictions == second.correct_predictions
