"""Smoke tests for the public package surface."""

import importlib

import pytest

import repro


class TestTopLevelAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_import(self):
        for module in (
            "repro.core",
            "repro.predictors",
            "repro.trace",
            "repro.sim",
            "repro.analysis",
            "repro.workloads",
            "repro.isa",
            "repro.experiments",
            "repro.obs",
        ):
            importlib.import_module(module)

    def test_subpackage_all_exports_resolve(self):
        for module_name in (
            "repro.core",
            "repro.predictors",
            "repro.trace",
            "repro.sim",
            "repro.analysis",
            "repro.isa",
            "repro.workloads",
            "repro.experiments",
            "repro.obs",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_quickstart_flow(self):
        # The README's quickstart, end to end, on a tiny synthetic trace.
        from repro import make_pag, simulate
        from repro.trace import synthetic

        trace = synthetic.loop_trace(iterations=50, trip_count=4)
        result = simulate(make_pag(8), trace)
        assert result.accuracy > 0.9

    def test_docstrings_on_public_callables(self):
        # Every public callable of the top-level API carries a docstring.
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, type(repro)):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, undocumented


class TestSHRNaming:
    def test_sag_round_trip(self):
        from repro.core.naming import SchemeSpec
        from repro.core.perset import SAgPredictor

        name = SAgPredictor(10, 16).name
        predictor = SchemeSpec.parse(name).build()
        assert isinstance(predictor, SAgPredictor)
        assert predictor.num_sets == 16
        assert predictor.history_bits == 10

    def test_sas_round_trip(self):
        from repro.core.naming import SchemeSpec
        from repro.core.perset import SAsPredictor

        predictor = SchemeSpec.parse("SAs(SHR(8,,6-sr),8xPHT(2^6,A2),)").build()
        assert isinstance(predictor, SAsPredictor)
        assert predictor.num_sets == 8
