"""Tests for the predictor registry (Table 3 + friendly names)."""

import pytest

from repro.core.automata import A3, LAST_TIME
from repro.core.naming import SchemeParseError
from repro.core.static_training import GSgPredictor, PSgPredictor
from repro.core.twolevel import (
    GAgPredictor,
    GApPredictor,
    GsharePredictor,
    PAgPredictor,
    PApPredictor,
)
from repro.predictors.base import TrainingUnavailable
from repro.predictors.btb import BTBPredictor
from repro.predictors.registry import (
    figure11_factories,
    make_predictor,
    paper_table3_specs,
)
from repro.predictors.static import BTFN, AlwaysNotTaken, AlwaysTaken, ProfileGuided
from repro.trace.events import TraceBuilder


def _trace():
    builder = TraceBuilder()
    for i in range(30):
        builder.conditional(0x10, i % 2 == 0)
    return builder.build()


class TestTable3Specs:
    def test_row_count(self):
        assert len(paper_table3_specs()) == 15

    def test_all_rows_format_and_reparse(self):
        from repro.core.naming import SchemeSpec

        for spec in paper_table3_specs(12):
            assert SchemeSpec.parse(spec.format()) == spec

    def test_history_bits_parameterised(self):
        specs = paper_table3_specs(history_bits=8)
        two_level = [s for s in specs if s.history_bits is not None]
        assert all(s.history_bits == 8 for s in two_level)

    def test_context_switch_flag(self):
        specs = paper_table3_specs(context_switch=True)
        assert all(s.context_switch for s in specs)

    def test_automata_coverage(self):
        contents = {s.pattern_content for s in paper_table3_specs() if s.pattern_content}
        assert {"A1", "A2", "A3", "A4", "LT", "PB"} <= contents

    def test_all_dynamic_rows_buildable(self):
        trace = _trace()
        for spec in paper_table3_specs(8):
            predictor = spec.build(training_trace=trace)
            assert predictor.predict(0x10) in (True, False)


class TestFriendlyNames:
    @pytest.mark.parametrize(
        "name,expected_type",
        [
            ("gag-12", GAgPredictor),
            ("gap-8", GApPredictor),
            ("gshare-10", GsharePredictor),
            ("pag-12", PAgPredictor),
            ("pap-6", PApPredictor),
            ("btb-a2", BTBPredictor),
            ("btb-lt", BTBPredictor),
            ("always-taken", AlwaysTaken),
            ("always-not-taken", AlwaysNotTaken),
            ("btfn", BTFN),
        ],
    )
    def test_builds_expected_type(self, name, expected_type):
        assert isinstance(make_predictor(name), expected_type)

    def test_automaton_suffix(self):
        predictor = make_predictor("pag-12-a3")
        assert predictor.automaton is A3

    def test_bht_geometry_suffix(self):
        predictor = make_predictor("pag-12-a2-256x1")
        assert predictor.bht.num_entries == 256
        assert predictor.bht.associativity == 1

    def test_ideal_suffix(self):
        predictor = make_predictor("pap-6-a2-ideal")
        assert predictor.config.bht_entries is None

    def test_training_dependent_names(self):
        trace = _trace()
        assert isinstance(make_predictor("gsg-8", trace), GSgPredictor)
        assert isinstance(make_predictor("psg-8", trace), PSgPredictor)
        assert isinstance(make_predictor("profile", trace), ProfileGuided)

    def test_training_dependent_without_trace(self):
        with pytest.raises(SchemeParseError):
            make_predictor("gsg-8")
        with pytest.raises(SchemeParseError):
            make_predictor("profile")

    def test_table3_string_accepted(self):
        predictor = make_predictor("BTB(BHT(512,4,LT),,)")
        assert predictor.automaton is LAST_TIME

    def test_unknown_name_rejected(self):
        with pytest.raises(SchemeParseError):
            make_predictor("not-a-predictor")


class TestFigure11Factories:
    def test_contains_paper_schemes(self):
        factories = figure11_factories()
        assert "PAg(512,4,12-sr,A2)" in factories
        assert "AlwaysTaken" in factories
        assert len(factories) == 8

    def test_dynamic_builders_ignore_training(self):
        factories = figure11_factories()
        assert factories["BTFN"](None).predict(1, 0) in (True, False)

    def test_training_builders_raise_training_unavailable(self):
        factories = figure11_factories()
        with pytest.raises(TrainingUnavailable):
            factories["Profile"](None)
        with pytest.raises(TrainingUnavailable):
            factories["GSg(12-sr)"](None)

    def test_training_builders_work_with_trace(self):
        factories = figure11_factories()
        trace = _trace()
        assert isinstance(factories["PSg(512,4,12-sr)"](trace), PSgPredictor)


class TestExtensionFriendlyNames:
    def test_perset_names(self):
        from repro.core.perset import SAgPredictor, SAsPredictor

        sag = make_predictor("sag-8x16")
        assert isinstance(sag, SAgPredictor)
        assert sag.num_sets == 16
        sas = make_predictor("sas-6x32")
        assert isinstance(sas, SAsPredictor)
        assert sas.history_bits == 6

    def test_gselect_name(self):
        from repro.predictors.extensions import GselectPredictor

        gselect = make_predictor("gselect-6+8")
        assert isinstance(gselect, GselectPredictor)
        assert gselect.address_bits == 6
        assert gselect.history_bits == 8

    def test_tournament_name(self):
        from repro.predictors.extensions import TournamentPredictor

        assert isinstance(make_predictor("tournament"), TournamentPredictor)
