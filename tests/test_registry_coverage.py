"""Every registered scheme must construct, predict, and reset cleanly.

Satellite coverage for the registry: one end-to-end exercise per
registered name (friendly grammar + Table 3 strings), pinning three
contracts the experiment runner relies on:

* the scheme builds and scores a 1 000-branch synthetic trace;
* ``reset()`` returns to the power-on state — re-simulating the same
  trace scores identically (no state leaks across runs);
* ``on_context_switch()`` on a power-on predictor is behaviourally a
  no-op (flushing empty structures changes nothing).
"""

import pytest

from repro.check.pickling import DEFAULT_SPEC_NAMES, probe_trace, training_trace
from repro.check.registry import FRIENDLY_REPRESENTATIVES
from repro.predictors.registry import make_predictor
from repro.sim.engine import simulate

CORPUS = sorted(set(DEFAULT_SPEC_NAMES) | set(FRIENDLY_REPRESENTATIVES))


@pytest.fixture(scope="module")
def trace():
    return probe_trace(branches_per_site=250)  # 1 000 conditional branches


@pytest.fixture(scope="module")
def training():
    return training_trace()


def _counts(result):
    return (result.correct_predictions, result.conditional_branches)


@pytest.mark.parametrize("name", CORPUS)
def test_scheme_simulates_sanely(name, trace, training):
    predictor = make_predictor(name, training)
    result = simulate(predictor, trace)
    assert result.conditional_branches == len(trace)
    assert 0.0 <= result.accuracy <= 1.0


@pytest.mark.parametrize("name", CORPUS)
def test_reset_restores_power_on_state(name, trace, training):
    predictor = make_predictor(name, training)
    first = simulate(predictor, trace)
    predictor.reset()
    second = simulate(predictor, trace)
    assert _counts(second) == _counts(first)


@pytest.mark.parametrize("name", CORPUS)
def test_context_switch_on_fresh_predictor_is_noop(name, trace, training):
    baseline = make_predictor(name, training)
    flushed = make_predictor(name, training)
    flushed.on_context_switch()
    assert _counts(simulate(flushed, trace)) == _counts(simulate(baseline, trace))


@pytest.mark.parametrize("name", CORPUS)
def test_predictor_survives_mid_trace_context_switch(name, trace, training):
    predictor = make_predictor(name, training)
    for i, (pc, taken, cls, target, _instret, _trap) in enumerate(trace.iter_tuples()):
        if i == len(trace) // 2:
            predictor.on_context_switch()
        guess = predictor.predict(pc, target)
        assert isinstance(guess, bool)
        predictor.update(pc, taken, target)
