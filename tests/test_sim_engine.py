"""Tests for the trace-driven simulation engine."""

import pytest

from repro.core.twolevel import make_gag, make_pag
from repro.predictors.base import BranchPredictor, CountingPredictor
from repro.predictors.static import AlwaysTaken
from repro.sim.engine import ContextSwitchConfig, simulate, simulate_named
from repro.trace import synthetic
from repro.trace.events import BranchClass, TraceBuilder


class _Scripted(CountingPredictor):
    """Predicts a fixed sequence; records every call."""

    name = "scripted"

    def __init__(self, predictions):
        super().__init__()
        self._predictions = list(predictions)
        self._cursor = 0
        self.updates = []
        self.switches = 0

    def predict(self, pc, target=0):
        self._count_predict()
        value = self._predictions[self._cursor % len(self._predictions)]
        self._cursor += 1
        return value

    def update(self, pc, taken, target=0):
        self._count_update()
        self.updates.append((pc, taken))

    def on_context_switch(self):
        self.switches += 1


class TestScoring:
    def test_accuracy_counts_matches(self):
        builder = TraceBuilder()
        for outcome in (True, False, True, True):
            builder.conditional(0x1, outcome)
        predictor = _Scripted([True])  # always predicts taken
        result = simulate(predictor, builder.build())
        assert result.conditional_branches == 4
        assert result.correct_predictions == 3
        assert result.accuracy == pytest.approx(0.75)

    def test_every_predict_followed_by_update(self):
        trace = synthetic.loop_trace(iterations=10, trip_count=4)
        predictor = _Scripted([True])
        simulate(predictor, trace)
        assert predictor.predict_calls == len(trace)
        assert predictor.update_calls == len(trace)

    def test_non_conditional_branches_not_predicted(self):
        builder = TraceBuilder()
        builder.conditional(1, True)
        builder.call(2)
        builder.ret(3)
        builder.unconditional(4)
        builder.conditional(5, False)
        predictor = _Scripted([True])
        result = simulate(predictor, builder.build())
        assert predictor.predict_calls == 2
        assert result.conditional_branches == 2

    def test_empty_trace(self):
        result = simulate(_Scripted([True]), TraceBuilder().build())
        assert result.conditional_branches == 0
        assert result.accuracy == 0.0

    def test_result_carries_names(self):
        builder = TraceBuilder(name="bench", dataset="in0")
        builder.conditional(1, True)
        result = simulate(AlwaysTaken(), builder.build())
        assert result.trace_name == "bench"
        assert result.dataset == "in0"
        assert result.predictor_name == "AlwaysTaken"


class TestWarmup:
    def test_warmup_branches_not_scored(self):
        builder = TraceBuilder()
        # Two wrong-for-AlwaysTaken branches first, then ten right ones.
        builder.conditional(1, False)
        builder.conditional(1, False)
        for _ in range(10):
            builder.conditional(1, True)
        result = simulate(AlwaysTaken(), builder.build(), warmup_branches=2)
        assert result.conditional_branches == 10
        assert result.accuracy == 1.0


class TestPerSiteTracking:
    def test_tracks_mispredictions_per_site(self):
        builder = TraceBuilder()
        for _ in range(5):
            builder.conditional(0xA, True)
            builder.conditional(0xB, False)
        result = simulate(AlwaysTaken(), builder.build(), track_per_site=True)
        assert result.per_site_executions == {0xA: 5, 0xB: 5}
        assert result.per_site_mispredictions == {0xB: 5}

    def test_worst_sites_ranking(self):
        builder = TraceBuilder()
        for _ in range(3):
            builder.conditional(0xA, False)
        builder.conditional(0xB, False)
        result = simulate(AlwaysTaken(), builder.build(), track_per_site=True)
        worst = result.worst_sites(2)
        assert worst[0] == (0xA, 3, 3)
        assert worst[1] == (0xB, 1, 1)

    def test_worst_sites_requires_tracking(self):
        builder = TraceBuilder()
        builder.conditional(1, True)
        result = simulate(AlwaysTaken(), builder.build())
        with pytest.raises(ValueError):
            result.worst_sites()


class TestContextSwitches:
    def test_interval_switches(self):
        builder = TraceBuilder()
        for _ in range(100):
            builder.conditional(0x1, True, work=999)  # 1000 instr per branch
        predictor = _Scripted([True])
        result = simulate(
            predictor,
            builder.build(),
            context_switches=ContextSwitchConfig(interval=10_000),
        )
        # 100k instructions / 10k interval -> one switch per absolute
        # boundary (instret 10k, 20k, ..., 100k), exactly.
        assert result.context_switches == 10
        assert predictor.switches == result.context_switches

    def test_trap_triggers_switch(self):
        builder = TraceBuilder()
        builder.conditional(1, True)
        builder.trap()
        builder.conditional(1, True)
        predictor = _Scripted([True])
        simulate(predictor, builder.build(), context_switches=ContextSwitchConfig())
        assert predictor.switches == 1

    def test_traps_ignored_when_disabled(self):
        builder = TraceBuilder()
        builder.conditional(1, True)
        builder.trap()
        builder.conditional(1, True)
        predictor = _Scripted([True])
        simulate(
            predictor,
            builder.build(),
            context_switches=ContextSwitchConfig(switch_on_traps=False),
        )
        assert predictor.switches == 0

    def test_no_config_means_no_switches(self):
        builder = TraceBuilder()
        builder.conditional(1, True, work=10_000_000)
        builder.trap()
        builder.conditional(1, True)
        predictor = _Scripted([True])
        simulate(predictor, builder.build())
        assert predictor.switches == 0

    def test_trap_before_first_boundary(self):
        builder = TraceBuilder()
        builder.conditional(1, True, work=999)
        builder.trap()
        for _ in range(8):
            builder.conditional(1, True, work=999)
        predictor = _Scripted([True])
        simulate(
            predictor,
            builder.build(),
            context_switches=ContextSwitchConfig(interval=10_000),
        )
        # Only the trap switch: the trace retires ~9k instructions, so
        # the first interval boundary (instret 10k) is never reached.
        assert predictor.switches == 1

    def test_traps_do_not_reschedule_interval_boundaries(self):
        # Interval boundaries are absolute multiples of the interval; a
        # trap-driven switch must not push the next boundary out (the
        # old implementation restarted the countdown, drifting epochs).
        builder = TraceBuilder()
        builder.conditional(1, True, work=4_999)  # instret 5_000
        builder.trap()                            # instret 5_001
        builder.conditional(1, True, work=0)      # instret 5_002, trap switch
        builder.conditional(1, True, work=4_997)  # instret 10_000, boundary
        predictor = _Scripted([True])
        simulate(
            predictor,
            builder.build(),
            context_switches=ContextSwitchConfig(interval=10_000),
        )
        assert predictor.switches == 2

    def test_coincident_trap_and_boundary_switch_once(self):
        builder = TraceBuilder()
        builder.conditional(1, True, work=4_999)  # instret 5_000
        builder.trap()                            # instret 5_001
        builder.conditional(1, True, work=4_998)  # instret 10_000: trap + boundary
        predictor = _Scripted([True])
        result = simulate(
            predictor,
            builder.build(),
            context_switches=ContextSwitchConfig(interval=10_000),
        )
        assert predictor.switches == 1
        assert result.context_switches == 1

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            ContextSwitchConfig(interval=0)

    def test_switches_degrade_per_address_predictors(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(t) for t in (3, 5, 7)], length=30_000, work_per_branch=30
        )
        plain = simulate(make_pag(8), trace).accuracy
        switched = simulate(
            make_pag(8), trace, context_switches=ContextSwitchConfig(interval=20_000)
        ).accuracy
        assert switched < plain

    def test_simulate_named_flag(self):
        trace = synthetic.loop_trace(iterations=100, trip_count=3)
        with_cs = simulate_named(make_gag(6), trace, with_context_switches=True)
        without = simulate_named(make_gag(6), trace, with_context_switches=False)
        assert with_cs.conditional_branches == without.conditional_branches
