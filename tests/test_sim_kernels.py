"""Equivalence pins for the vectorized fast-path kernels.

The contract under test: for every predictor with a kernel,
:func:`repro.sim.kernels.simulate_vectorized` returns a
:class:`~repro.sim.results.SimulationResult` **bit-identical** to the
interpreted engine — same aggregate counts, same per-site dictionaries,
same context-switch count — across context-switch configurations,
warmup windows and per-site tracking. Schemes without a kernel must
fail loudly under ``backend="vectorized"`` and silently fall back under
``backend="auto"``.
"""

import random

import pytest

from repro.core.automata import A2, LAST_TIME
from repro.predictors.btb import BTBPredictor
from repro.predictors.registry import make_predictor
from repro.sim import (
    ContextSwitchConfig,
    KernelUnavailable,
    kernel_supports,
    simulate,
    simulate_vectorized,
    simulate_with_backend,
)
from repro.trace.events import BranchClass, TraceBuilder


def synthetic_trace(seed=11, n=12_000, sites=96, name="synth"):
    """A dense mixed trace: biased conditionals, traps, call/return."""
    rng = random.Random(seed)
    builder = TraceBuilder(name=name, dataset="unit", source="synthetic")
    pcs = [0x40_0000 + 8 * i for i in range(sites)]
    for i in range(n):
        pc = rng.choice(pcs)
        if rng.random() < 0.01:
            builder.trap()
        if rng.random() < 0.05:
            builder.branch(pc ^ 0x4, True, BranchClass.CALL, target=pc + 256, work=2)
            continue
        bias = (pc >> 3) % 10 / 10.0
        taken = rng.random() < bias
        target = pc - 128 if (pc >> 3) % 3 else pc + 128
        builder.branch(pc, taken, target=target, work=rng.randrange(1, 6))
    return builder.build()


TRACE = synthetic_trace()
TRAINING = synthetic_trace(seed=99, n=6_000, name="synth-train")

#: Registry names covering every kernel family and automaton, plus the
#: practical first-level variants (ideal / direct-mapped).
KERNEL_SCHEMES = [
    "gag-6",
    "gag-12",
    "gag-6-lt",
    "gag-6-a1",
    "gag-6-a3",
    "gag-6-a4",
    "gshare-8",
    "gap-5",
    "gsg-6",
    "psg-6-ideal",
    "psg-6-128x1",
    "pag-8-a2-ideal",
    "pag-8-a2-128x1",
    "pap-6-lt-ideal",
    "pap-6-a2-128x1",
    "always-taken",
    "always-not-taken",
    "btfn",
    "profile",
]

CS_CONFIGS = [
    None,
    ContextSwitchConfig(interval=3_000),
    ContextSwitchConfig(interval=3_333, switch_on_traps=False),
]


def build(name):
    return make_predictor(name, TRAINING)


def assert_equivalent(make, trace, cs=None, warmup=0, track=False):
    reference = simulate(
        make(),
        trace,
        context_switches=cs,
        track_per_site=track,
        warmup_branches=warmup,
        backend="python",
    )
    fast = simulate_vectorized(
        make(),
        trace,
        context_switches=cs,
        track_per_site=track,
        warmup_branches=warmup,
    )
    assert fast == reference
    return reference


@pytest.mark.parametrize("cs", CS_CONFIGS, ids=["none", "traps", "no-traps"])
@pytest.mark.parametrize("name", KERNEL_SCHEMES)
def test_kernel_matches_engine(name, cs):
    assert kernel_supports(build(name))
    assert_equivalent(lambda: build(name), TRACE, cs=cs)


@pytest.mark.parametrize("name", ["gag-8", "gshare-8", "pag-8-a2-128x1", "btfn"])
def test_kernel_matches_engine_warmup_and_per_site(name):
    cs = ContextSwitchConfig(interval=3_000)
    result = assert_equivalent(
        lambda: build(name), TRACE, cs=cs, warmup=500, track=True
    )
    assert result.per_site_executions


def test_direct_mapped_btb_matches_engine():
    for automaton in (A2, LAST_TIME):
        for cs in CS_CONFIGS:
            assert_equivalent(
                lambda: BTBPredictor(128, 1, automaton), TRACE, cs=cs
            )
            assert_equivalent(
                lambda: BTBPredictor(128, 1, automaton),
                TRACE,
                cs=cs,
                warmup=500,
                track=True,
            )


def test_kernel_does_not_mutate_predictor():
    predictor = build("pag-8-a2-128x1")
    before = predictor.bht.entries_snapshot()
    simulate_vectorized(predictor, TRACE)
    assert predictor.bht.entries_snapshot() == before
    gag = build("gag-6")
    pht_before = gag.pht.states_snapshot()
    simulate_vectorized(gag, TRACE, context_switches=ContextSwitchConfig(interval=3000))
    assert gag.pht.states_snapshot() == pht_before
    assert gag.ghr == (1 << gag.history_bits) - 1  # untouched taken-biased fill


def _wide_automaton_gag():
    """A GAg on an 8-state automaton: beyond the packed-code state limit,
    so no kernel can exist (dispatch is on exact type + scannability)."""
    from repro.core.automata import saturating_counter
    from repro.core.twolevel import GAgPredictor

    return GAgPredictor(6, saturating_counter(3))


def test_unsupported_predictor_raises_and_auto_falls_back():
    unsupported = _wide_automaton_gag()
    assert not kernel_supports(unsupported)
    with pytest.raises(KernelUnavailable):
        simulate_vectorized(unsupported, TRACE)
    with pytest.raises(KernelUnavailable):
        simulate(_wide_automaton_gag(), TRACE, backend="vectorized")
    result, used = simulate_with_backend(
        _wide_automaton_gag(), TRACE, backend="auto"
    )
    assert used == "python"
    assert result == simulate(_wide_automaton_gag(), TRACE, backend="python")


def test_supported_predictor_routes_to_kernel():
    result, used = simulate_with_backend(build("gag-6"), TRACE, backend="auto")
    assert used == "vectorized"
    assert result == simulate(build("gag-6"), TRACE, backend="python")


def test_probe_forces_interpreted_backend():
    from repro.obs import StreakHistogramProbe

    result, used = simulate_with_backend(
        build("gag-6"), TRACE, probe=StreakHistogramProbe(), backend="auto"
    )
    assert used == "python"
    assert result == simulate(build("gag-6"), TRACE, backend="python")


def test_invalid_backend_rejected():
    with pytest.raises(ValueError):
        simulate(build("gag-6"), TRACE, backend="numpy")


def test_empty_and_unconditional_traces():
    empty = TraceBuilder(name="empty").build()
    builder = TraceBuilder(name="calls-only")
    for i in range(50):
        builder.branch(0x1000 + 8 * i, True, BranchClass.CALL, work=3)
    calls_only = builder.build()
    for trace in (empty, calls_only):
        for cs in (None, ContextSwitchConfig(interval=50)):
            assert_equivalent(lambda: build("gag-6"), trace, cs=cs, track=True)


def test_warmup_exceeding_trace_matches_engine():
    assert_equivalent(
        lambda: build("gag-6"), TRACE, warmup=10 ** 9
    )


def test_non_monotone_instret_unsupported_only_with_context_switches():
    from repro.trace.events import Trace, TraceMeta

    n = 100
    instret = [2 * (i + 1) for i in range(n)]
    instret[50] = 0  # corrupt the retirement counter
    trace = Trace(
        meta=TraceMeta(name="weird"),
        pc=[0x2000] * n,
        taken=[i % 2 == 0 for i in range(n)],
        cls=[int(BranchClass.CONDITIONAL)] * n,
        target=[0] * n,
        instret=instret,
        trap=[False] * n,
    )
    assert_equivalent(lambda: build("gag-6"), trace)  # cs off: irrelevant
    with pytest.raises(KernelUnavailable):
        simulate_vectorized(
            build("gag-6"), trace, context_switches=ContextSwitchConfig(interval=10)
        )
    # backend="auto" still completes via the interpreted loop.
    result, used = simulate_with_backend(
        build("gag-6"),
        trace,
        context_switches=ContextSwitchConfig(interval=10),
        backend="auto",
    )
    assert used == "python"


def test_workload_trace_equivalence(small_cases):
    """Real generated workloads (with training traces) pin equivalence."""
    for case in small_cases:
        for name in ("gag-8", "pag-8-a2-128x1", "gshare-8", "btfn"):
            make = lambda: make_predictor(name, case.training_trace)  # noqa: E731
            if not kernel_supports(make()):
                continue
            assert_equivalent(make, case.test_trace)
            assert_equivalent(
                make,
                case.test_trace,
                cs=ContextSwitchConfig(interval=5_000),
                warmup=200,
                track=True,
            )
