"""Tests for result aggregation and the paper's geometric means."""

import math

import pytest

from repro.sim.results import ResultMatrix, SimulationResult, geometric_mean


def _result(scheme, bench, accuracy, total=1000):
    return SimulationResult(
        predictor_name=scheme,
        trace_name=bench,
        dataset="",
        conditional_branches=total,
        correct_predictions=int(round(accuracy * total)),
    )


class TestSimulationResult:
    def test_accuracy_and_mispredictions(self):
        result = _result("s", "b", 0.9)
        assert result.accuracy == pytest.approx(0.9)
        assert result.mispredictions == 100
        assert result.misprediction_rate == pytest.approx(0.1)

    def test_zero_branch_result(self):
        result = SimulationResult("s", "b", "", 0, 0)
        assert result.accuracy == 0.0
        assert result.misprediction_rate == 0.0

    def test_str_mentions_accuracy(self):
        assert "90.00%" in str(_result("s", "b", 0.9))


class TestGeometricMean:
    def test_matches_closed_form(self):
        values = [0.9, 0.95, 0.99]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert geometric_mean(values) == pytest.approx(expected)

    def test_single_value(self):
        assert geometric_mean([0.5]) == pytest.approx(0.5)

    def test_empty_is_zero(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([0.5, 0.0])

    def test_below_arithmetic_mean(self):
        values = [0.5, 0.99]
        assert geometric_mean(values) < sum(values) / 2


class TestResultMatrix:
    def _matrix(self):
        matrix = ResultMatrix(
            benchmarks=["int_a", "int_b", "fp_a"],
            categories={"int_a": "int", "int_b": "int", "fp_a": "fp"},
        )
        matrix.add("scheme1", _result("scheme1", "int_a", 0.90))
        matrix.add("scheme1", _result("scheme1", "int_b", 0.80))
        matrix.add("scheme1", _result("scheme1", "fp_a", 0.99))
        matrix.add("scheme2", _result("scheme2", "int_a", 0.95))
        matrix.add("scheme2", _result("scheme2", "fp_a", 0.90))
        return matrix

    def test_accuracy_lookup(self):
        matrix = self._matrix()
        assert matrix.accuracy("scheme1", "int_a") == pytest.approx(0.90)
        assert matrix.accuracy("scheme2", "int_b") is None

    def test_category_gmeans(self):
        matrix = self._matrix()
        assert matrix.gmean("scheme1", "int") == pytest.approx(
            geometric_mean([0.90, 0.80])
        )
        assert matrix.gmean("scheme1", "fp") == pytest.approx(0.99)
        assert matrix.gmean("scheme1") == pytest.approx(
            geometric_mean([0.90, 0.80, 0.99])
        )

    def test_missing_cells_excluded_from_gmean(self):
        # scheme2 has no int_b cell (like GSg on eqntott in Fig 11).
        matrix = self._matrix()
        assert matrix.gmean("scheme2", "int") == pytest.approx(0.95)

    def test_summary_keys(self):
        assert set(self._matrix().summary("scheme1")) == {
            "Int GMean",
            "FP GMean",
            "Tot GMean",
        }

    def test_best_scheme(self):
        matrix = self._matrix()
        assert matrix.best_scheme("int") == "scheme2"

    def test_best_scheme_empty_raises(self):
        empty = ResultMatrix(benchmarks=[], categories={})
        with pytest.raises(ValueError):
            empty.best_scheme()

    def test_row(self):
        row = self._matrix().row("scheme2")
        assert set(row) == {"int_a", "fp_a"}

    def test_as_rows_layout(self):
        rows = self._matrix().as_rows()
        assert rows[0]["scheme"] == "scheme1"
        assert "Tot GMean" in rows[0]
        assert rows[1]["int_b"] is None


class TestMPKI:
    def test_mpki_formula(self):
        result = SimulationResult(
            "s", "b", "", conditional_branches=1000, correct_predictions=900,
            total_instructions=50_000,
        )
        assert result.mpki == pytest.approx(1000.0 * 100 / 50_000)

    def test_mpki_zero_without_instruction_count(self):
        result = SimulationResult("s", "b", "", 1000, 900)
        assert result.mpki == 0.0

    def test_engine_populates_instruction_count(self):
        from repro.core.twolevel import make_pag
        from repro.sim.engine import simulate
        from repro.trace import synthetic

        trace = synthetic.loop_trace(iterations=100, trip_count=5, work_per_branch=20)
        result = simulate(make_pag(8), trace)
        assert result.total_instructions == trace.meta.total_instructions
        assert result.mpki > 0

    def test_fp_style_trace_has_lower_mpki_than_int_style(self):
        from repro.predictors.btb import btb_a2
        from repro.sim.engine import simulate
        from repro.trace import synthetic

        dense = synthetic.loop_trace(iterations=300, trip_count=4, work_per_branch=2)
        sparse = synthetic.loop_trace(iterations=300, trip_count=4, work_per_branch=40)
        dense_mpki = simulate(btb_a2(), dense).mpki
        sparse_mpki = simulate(btb_a2(), sparse).mpki
        # Same accuracy, but fewer branches per instruction -> lower MPKI.
        assert sparse_mpki < dense_mpki / 5


class TestSerializationRoundTrip:
    """Regression: cached and fresh matrices must compare equal."""

    def test_simulation_result_round_trip_exact(self):
        result = SimulationResult(
            predictor_name="PAg-12",
            trace_name="eqntott",
            dataset="int_pri_3.eqn",
            conditional_branches=12345,
            correct_predictions=11789,
            context_switches=7,
            per_site_executions={16: 100, 32: 200},
            per_site_mispredictions={16: 3},
            total_instructions=987654,
        )
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored == result
        # Derived floats are recomputed from identical ints: bit-equal.
        assert restored.accuracy == result.accuracy
        assert restored.mpki == result.mpki

    def test_simulation_result_json_stringified_keys(self):
        import json

        result = SimulationResult("s", "b", "", 10, 9, per_site_executions={5: 2},
                                  per_site_mispredictions={5: 1})
        payload = json.loads(json.dumps(result.to_dict()))
        restored = SimulationResult.from_dict(payload)
        assert restored.per_site_executions == {5: 2}
        assert restored == result

    def test_matrix_round_trip_with_blank_cells(self):
        matrix = ResultMatrix(benchmarks=["a", "b"], categories={"a": "int", "b": "fp"})
        matrix.add("s1", _result("s1", "a", 0.9))
        matrix.add("s1", _result("s1", "b", 0.987654321))
        matrix.add("s2", _result("s2", "a", 0.8))  # s2 has no 'b' cell
        restored = ResultMatrix.from_dict(matrix.to_dict())
        assert restored == matrix
        assert restored.accuracy("s2", "b") is None
        assert restored.gmean("s1") == matrix.gmean("s1")

    def test_matrix_round_trip_through_json(self):
        import json

        matrix = ResultMatrix(benchmarks=["a"], categories={"a": "int"})
        matrix.add("s", _result("s", "a", 0.999))
        payload = json.loads(json.dumps(matrix.to_dict()))
        assert ResultMatrix.from_dict(payload) == matrix

    def test_telemetry_excluded_from_equality(self):
        from repro.sim.results import RunTelemetry

        matrix = ResultMatrix(benchmarks=["a"], categories={"a": "int"})
        matrix.add("s", _result("s", "a", 0.9))
        other = ResultMatrix.from_dict(matrix.to_dict())
        other.telemetry = RunTelemetry(n_workers=4)
        assert other == matrix

    def test_export_json_round_trip_exact(self):
        from repro.experiments.export import matrix_from_json, matrix_to_json

        matrix = ResultMatrix(benchmarks=["a", "b"], categories={"a": "int", "b": "fp"})
        matrix.add("s1", _result("s1", "a", 0.123456789))
        matrix.add("s2", _result("s2", "b", 0.5))
        assert matrix_from_json(matrix_to_json(matrix)) == matrix


class TestRunTelemetryMerge:
    def _telemetry(self, **kwargs):
        from repro.sim.results import RunTelemetry

        telemetry = RunTelemetry(**kwargs)
        return telemetry

    def test_merged_with_accumulates_phases(self):
        first = self._telemetry(n_workers=2, wall_time=1.0)
        first.record("s1", "a", 0.5, "simulated", phases={"build": 0.1, "simulate": 0.4})
        second = self._telemetry(n_workers=4, wall_time=2.0)
        second.record("s2", "a", 0.7, "cache", phases={"cache_lookup": 0.01})
        second.record("s3", "a", 0.2, "simulated", phases={"simulate": 0.2})
        merged = first.merged_with(second)
        assert merged.n_workers == 4
        assert merged.total_cells == 3
        assert merged.simulations == 2
        assert merged.cache_hits == 1
        assert merged.wall_time == pytest.approx(3.0)
        assert merged.phase_seconds == pytest.approx(
            {"build": 0.1, "simulate": 0.6, "cache_lookup": 0.01}
        )
        # Inputs untouched.
        assert first.phase_seconds == pytest.approx({"build": 0.1, "simulate": 0.4})

    def test_merged_with_none_is_identity(self):
        telemetry = self._telemetry(n_workers=2, wall_time=1.5)
        telemetry.record("s", "a", 1.5, "simulated", phases={"simulate": 1.5})
        merged = telemetry.merged_with(None)
        assert merged.total_cells == 1
        assert merged.wall_time == 1.5
        assert merged.phase_seconds == {"simulate": 1.5}

    def test_merge_static_is_none_safe_on_both_sides(self):
        from repro.sim.results import RunTelemetry

        telemetry = self._telemetry(n_workers=1, wall_time=0.5)
        assert RunTelemetry.merge(None, None) is None
        assert RunTelemetry.merge(None, telemetry) is telemetry
        assert RunTelemetry.merge(telemetry, None).wall_time == 0.5
        assert RunTelemetry.merge(telemetry, telemetry).wall_time == 1.0

    def test_record_defaults_phases_empty(self):
        telemetry = self._telemetry()
        telemetry.record("s", "a", 0.1, "simulated")
        assert telemetry.cells[0].phases == {}
        assert telemetry.phase_seconds == {}

    def test_full_round_trip_including_cells(self):
        import json

        telemetry = self._telemetry(n_workers=3, wall_time=1.25, cache_misses=1)
        telemetry.record("s", "a", 1.25, "simulated",
                         phases={"trace_load": 0.5, "simulate": 0.75})
        from repro.sim.results import RunTelemetry

        payload = json.loads(json.dumps(telemetry.to_dict()))
        rebuilt = RunTelemetry.from_dict(payload)
        assert rebuilt == telemetry

    def test_as_dict_reports_sorted_rounded_phases(self):
        telemetry = self._telemetry()
        telemetry.record("s", "a", 0.2, "simulated",
                         phases={"simulate": 0.123456, "build": 0.000049})
        summary = telemetry.as_dict()
        assert list(summary["phase_seconds"]) == ["build", "simulate"]
        assert summary["phase_seconds"]["simulate"] == 0.1235
