"""Tests for the experiment runner."""

import pytest

from repro.core.twolevel import make_gag
from repro.predictors.base import TrainingUnavailable
from repro.predictors.static import AlwaysTaken, ProfileGuided
from repro.sim.engine import ContextSwitchConfig
from repro.sim.runner import BenchmarkCase, run_case, run_matrix, sweep_parameter
from repro.trace import synthetic


def _case(name, category="int", trip=4, with_training=False):
    test_trace = synthetic.loop_trace(iterations=200, trip_count=trip, name=name)
    training = synthetic.loop_trace(iterations=100, trip_count=trip, name=name) if with_training else None
    return BenchmarkCase(name=name, category=category, test_trace=test_trace, training_trace=training)


class TestBenchmarkCase:
    def test_category_validation(self):
        with pytest.raises(ValueError):
            _case("x", category="weird")


class TestRunCase:
    def test_runs_predictor(self):
        result = run_case(lambda t: AlwaysTaken(), _case("a"))
        assert result is not None
        assert result.trace_name == "a"

    def test_training_unavailable_skips(self):
        def builder(trace):
            if trace is None:
                raise TrainingUnavailable("no data")
            return ProfileGuided.trained_on(trace)

        assert run_case(builder, _case("a", with_training=False)) is None
        assert run_case(builder, _case("a", with_training=True)) is not None

    def test_context_switch_passthrough(self):
        result = run_case(
            lambda t: make_gag(6),
            _case("a"),
            context_switches=ContextSwitchConfig(interval=100),
        )
        assert result.context_switches > 0


class TestRunMatrix:
    def test_full_grid(self):
        cases = [_case("a"), _case("b", category="fp", trip=6)]
        builders = {
            "AT": lambda t: AlwaysTaken(),
            "GAg": lambda t: make_gag(8),
        }
        matrix = run_matrix(builders, cases)
        assert set(matrix.schemes) == {"AT", "GAg"}
        assert matrix.accuracy("AT", "a") is not None
        assert matrix.accuracy("GAg", "b") is not None

    def test_fresh_predictor_per_case(self):
        seen = []

        def builder(trace):
            predictor = make_gag(6)
            seen.append(predictor)
            return predictor

        run_matrix({"GAg": builder}, [_case("a"), _case("b")])
        assert len(seen) == 2
        assert seen[0] is not seen[1]

    def test_partial_coverage_for_training_schemes(self):
        def needs_training(trace):
            if trace is None:
                raise TrainingUnavailable("na")
            return ProfileGuided.trained_on(trace)

        cases = [_case("a", with_training=True), _case("b", with_training=False)]
        matrix = run_matrix({"Profile": needs_training}, cases)
        assert matrix.accuracy("Profile", "a") is not None
        assert matrix.accuracy("Profile", "b") is None

    def test_benchmark_order_preserved(self):
        cases = [_case("z"), _case("a")]
        matrix = run_matrix({"AT": lambda t: AlwaysTaken()}, cases)
        assert matrix.benchmarks == ["z", "a"]


class TestSweep:
    def test_sweep_labels_and_coverage(self):
        cases = [_case("a")]
        matrix = sweep_parameter(
            lambda k: (lambda t: make_gag(k)),
            values=[4, 8],
            cases=cases,
            label=lambda k: f"GAg-{k}",
        )
        assert set(matrix.schemes) == {"GAg-4", "GAg-8"}

    def test_longer_history_not_worse_on_loop(self):
        cases = [_case("a", trip=6)]
        matrix = sweep_parameter(
            lambda k: (lambda t: make_gag(k)),
            values=[2, 10],
            cases=cases,
            label=lambda k: f"GAg-{k}",
        )
        assert matrix.gmean("GAg-10") >= matrix.gmean("GAg-2")
