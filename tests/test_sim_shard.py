"""Equivalence pins for the trace-sharded parallel kernel driver.

The contract (see :mod:`repro.sim.shard`): for every kernel-supported
predictor, :func:`simulate_sharded` is **bit-identical** to the serial
interpreted engine — aggregate counts, per-site dictionaries,
context-switch count — at *every* shard count, including shard
boundaries landing exactly on context-switch epochs and one-record
shards. Unsupported predictors fail loudly (and fall back under
``backend="auto"``), and sharding never mutates the predictor.
"""

import random

import pytest

from repro.core.automata import A2, LAST_TIME, saturating_counter
from repro.core.twolevel import GAgPredictor, make_pag, make_pap
from repro.predictors.btb import BTBPredictor
from repro.predictors.extensions import GselectPredictor, TournamentPredictor
from repro.predictors.registry import make_predictor, paper_table3_specs
from repro.sim import (
    ContextSwitchConfig,
    KernelUnavailable,
    kernel_supports,
    shard_supports,
    simulate,
    simulate_sharded,
    simulate_with_backend,
)
from repro.sim.runner import BenchmarkCase, run_case, run_matrix
from repro.trace.events import BranchClass, TraceBuilder


def synthetic_trace(seed=17, n=9_000, sites=120, name="shard-synth"):
    rng = random.Random(seed)
    builder = TraceBuilder(name=name, dataset="unit", source="synthetic")
    pcs = [0x40_0000 + 8 * i for i in range(sites)]
    for i in range(n):
        pc = rng.choice(pcs)
        if rng.random() < 0.01:
            builder.trap()
        if rng.random() < 0.05:
            builder.branch(pc ^ 0x4, True, BranchClass.CALL, target=pc + 256, work=2)
            continue
        bias = (pc >> 3) % 10 / 10.0
        taken = rng.random() < bias
        target = pc - 128 if (pc >> 3) % 3 else pc + 128
        builder.branch(pc, taken, target=target, work=rng.randrange(1, 6))
    return builder.build()


TRACE = synthetic_trace()
TRAINING = synthetic_trace(seed=23, n=5_000, name="shard-train")

#: The new-kernel families the shard matrix must pin: set-associative
#: first levels (both associativities), the hybrids, and a per-set rung.
MAKERS = {
    "pag-a2-assoc2": lambda: make_pag(7, A2, 64, 2),
    "pap-a2-assoc4": lambda: make_pap(5, A2, 32, 4),
    "pap-lt-assoc4-noreset": lambda: make_pap(5, LAST_TIME, 32, 4, reset_pht_on_evict=False),
    "btb-assoc4": lambda: BTBPredictor(64, 4, A2),
    "gselect": lambda: GselectPredictor(6, 4),
    "tournament": lambda: TournamentPredictor(
        make_pag(6, A2, 32, 2), GselectPredictor(5, 3), chooser_bits=8
    ),
    "sas": lambda: make_predictor("sas-6x16", TRAINING),
    "gag": lambda: make_predictor("gag-8", TRAINING),
}

CS_CONFIGS = [None, ContextSwitchConfig(interval=3_000)]
SHARDS = [1, 2, 7, 64]


def assert_shard_equivalent(make, trace, cs=None, warmup=0, track=False,
                            shards=SHARDS):
    reference = simulate(
        make(), trace, context_switches=cs, track_per_site=track,
        warmup_branches=warmup, backend="python",
    )
    for n_shards in shards:
        sharded = simulate_sharded(
            make(), trace, shards=n_shards, context_switches=cs,
            track_per_site=track, warmup_branches=warmup,
        )
        assert sharded == reference, (n_shards,)
    return reference


@pytest.mark.parametrize("cs", CS_CONFIGS, ids=["none", "switches"])
@pytest.mark.parametrize("name", sorted(MAKERS))
def test_sharded_matches_engine(name, cs):
    make = MAKERS[name]
    assert kernel_supports(make())
    assert shard_supports(make())
    assert_shard_equivalent(make, TRACE, cs=cs)


@pytest.mark.parametrize("name", ["pag-a2-assoc2", "tournament", "gselect"])
def test_sharded_matches_engine_warmup_and_per_site(name):
    result = assert_shard_equivalent(
        MAKERS[name], TRACE, cs=ContextSwitchConfig(interval=3_000),
        warmup=500, track=True,
    )
    assert result.per_site_executions


def test_shard_boundary_on_context_switch_epoch():
    """A chunk boundary landing exactly on a flush epoch must not shift
    or duplicate the flush (first-level epochs are absolute)."""
    builder = TraceBuilder(name="epoch-aligned", dataset="unit")
    rng = random.Random(3)
    for i in range(6_000):  # work=1 -> instret == i + 1, no traps/calls
        pc = 0x1000 + 8 * (i % 37)
        builder.branch(pc, rng.random() < 0.7, target=pc + 64, work=1)
    trace = builder.build()
    cs = ContextSwitchConfig(interval=3_000)  # epoch flips at record 3000
    for make in (MAKERS["pag-a2-assoc2"], MAKERS["tournament"], MAKERS["gag"]):
        # shards=2 puts its chunk boundary exactly at the epoch flip;
        # 4 and 6000 cover boundaries on either side and every record.
        assert_shard_equivalent(make, trace, cs=cs, shards=[2, 4, 6_000])


def test_shard_size_one_records():
    """More shards than conditional records: every chunk holds at most
    one record (plus empty chunks), still bit-identical."""
    small = synthetic_trace(seed=31, n=300, sites=24, name="tiny")
    for name in ("pap-a2-assoc4", "tournament", "sas"):
        assert_shard_equivalent(
            MAKERS[name], small, cs=ContextSwitchConfig(interval=120),
            shards=[300, 512],
        )


def test_every_paper_registry_scheme_is_kernel_supported():
    """Acceptance pin: no scheme in the paper registry falls back."""
    for spec in paper_table3_specs(history_bits=12):
        predictor = make_predictor(str(spec), TRAINING)
        assert kernel_supports(predictor), str(spec)
        assert shard_supports(predictor), str(spec)


def test_sharded_does_not_mutate_predictor():
    predictor = MAKERS["pag-a2-assoc2"]()
    before = predictor.bht.entries_snapshot()
    simulate_sharded(predictor, TRACE, shards=4,
                     context_switches=ContextSwitchConfig(interval=3_000))
    assert predictor.bht.entries_snapshot() == before
    tournament = MAKERS["tournament"]()
    simulate_sharded(tournament, TRACE, shards=4)
    assert tournament._choosers == [1] * len(tournament._choosers)
    assert tournament.disagreements == 0
    assert tournament.second.ghr == tournament.second._history_mask


def _unsupported():
    # An 8-state automaton is beyond the packed-code state limit.
    return GAgPredictor(6, saturating_counter(3))


def test_unsupported_predictor_raises_and_auto_falls_back():
    assert not shard_supports(_unsupported())
    with pytest.raises(KernelUnavailable):
        simulate_sharded(_unsupported(), TRACE, shards=4)
    with pytest.raises(KernelUnavailable):
        simulate(_unsupported(), TRACE, backend="vectorized", shards=4)
    result, used = simulate_with_backend(
        _unsupported(), TRACE, backend="auto", shards=4
    )
    assert used == "python"
    assert result == simulate(_unsupported(), TRACE, backend="python")


def test_tournament_with_unsupported_component_falls_back():
    hybrid = TournamentPredictor(_unsupported(), GselectPredictor(5, 3))
    assert not kernel_supports(hybrid)
    with pytest.raises(KernelUnavailable):
        simulate_sharded(hybrid, TRACE, shards=2)
    _result, used = simulate_with_backend(
        TournamentPredictor(_unsupported(), GselectPredictor(5, 3)),
        TRACE, backend="auto",
    )
    assert used == "python"


def test_engine_rejects_invalid_shard_combinations():
    with pytest.raises(ValueError):
        simulate(MAKERS["gag"](), TRACE, backend="auto", shards=0)
    with pytest.raises(ValueError):
        simulate(MAKERS["gag"](), TRACE, backend="python", shards=2)
    with pytest.raises(ValueError):
        simulate(MAKERS["gag"](), TRACE, backend="auto", shards=2, block_size=1_000)
    with pytest.raises(ValueError):
        simulate_sharded(MAKERS["gag"](), TRACE, shards=0)


def test_probe_with_explicit_vectorized_backend_raises():
    from repro.obs import StreakHistogramProbe

    with pytest.raises(KernelUnavailable):
        simulate(MAKERS["gag"](), TRACE, backend="vectorized",
                 probe=StreakHistogramProbe())
    result, used = simulate_with_backend(
        MAKERS["gag"](), TRACE, backend="auto", probe=StreakHistogramProbe()
    )
    assert used == "python"
    assert result == simulate(MAKERS["gag"](), TRACE, backend="python")


def test_engine_reports_vectorized_for_sharded_runs():
    result, used = simulate_with_backend(
        MAKERS["gag"](), TRACE, backend="auto", shards=4
    )
    assert used == "vectorized"
    assert result == simulate(MAKERS["gag"](), TRACE, backend="python")


def test_run_case_and_matrix_thread_shards():
    case = BenchmarkCase(
        name="shardcase", category="int",
        test_trace=TRACE, training_trace=TRAINING,
    )
    plain = run_case(lambda _t: MAKERS["pag-a2-assoc2"](), case)
    sharded = run_case(lambda _t: MAKERS["pag-a2-assoc2"](), case, shards=7)
    assert sharded == plain
    builders = {
        "PAg-assoc": lambda _t: MAKERS["pag-a2-assoc2"](),
        "Tournament": lambda _t: MAKERS["tournament"](),
    }
    reference = run_matrix(builders, [case])
    matrix = run_matrix(builders, [case], shards=7)
    assert matrix.cells == reference.cells
    # The shard count rides the run telemetry into ledger entries
    # (extra["shards"]) for simulated cells only.
    assert reference.telemetry.shards == 0
    assert matrix.telemetry.shards == 7
    from repro.obs.ledger import entries_from_matrix

    for entry in entries_from_matrix(matrix):
        assert entry.extra["shards"] == 7
    for entry in entries_from_matrix(reference):
        assert "shards" not in entry.extra


def test_cache_hits_report_cache_backend(tmp_path):
    from repro.sim.parallel import spec
    from repro.trace.cache import ResultCache

    case = BenchmarkCase(
        name="cachecase", category="int",
        test_trace=synthetic_trace(seed=41, n=1_500, sites=32, name="cachecase"),
    )
    builders = {"GAg-6": spec("gag-6")}
    cache = ResultCache(tmp_path)
    cold = run_matrix(builders, [case], result_cache=cache)
    assert [c.backend for c in cold.telemetry.cells] == ["vectorized"]
    warm = run_matrix(builders, [case], result_cache=cache)
    assert warm.cells == cold.cells
    assert [c.backend for c in warm.telemetry.cells] == ["cache"]
