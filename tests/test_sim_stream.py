"""Streamed simulation: block-size independence and bounded memory.

The contract under test (see docs/traces.md): simulating any
``TraceSource`` at any ``block_size`` — on either backend — produces a
``SimulationResult`` bit-identical to simulating the fully
materialized trace in one pass, and peak resident memory tracks the
block size, not the stream length.
"""

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.predictors.registry import make_predictor
from repro.sim.engine import ContextSwitchConfig, simulate, simulate_with_backend
from repro.sim.kernels import (
    KernelUnavailable,
    simulate_vectorized,
    simulate_vectorized_stream,
    stream_kernel_supports,
)
from repro.sim.runner import BenchmarkCase, run_case
from repro.trace.events import TraceBuilder
from repro.trace.stream import (
    IndexedSource,
    RecordStreamSource,
    bernoulli_outcomes,
    open_stream,
    save_source,
)
from repro.trace.synthetic import markov_records


def _synthetic_trace(seed=11, n=12_000, sites=64):
    """A trace exercising every streamed-state hazard: many sites,
    biased conditionals, traps, and non-conditional records."""
    rng = random.Random(seed)
    builder = TraceBuilder(name=f"synth-{seed}", dataset="d", source="test")
    pcs = [0x4000 + 16 * i for i in range(sites)]
    bias = {pc: rng.uniform(0.1, 0.9) for pc in pcs}
    for i in range(n):
        pc = rng.choice(pcs)
        builder.conditional(pc, rng.random() < bias[pc], work=rng.randrange(1, 6))
        if rng.random() < 0.01:
            builder.trap()
        if rng.random() < 0.05:
            builder.call(0x9000, target=0xA000, work=2)
    return builder.build()


TRACE = _synthetic_trace()
TRAINING = _synthetic_trace(seed=99, n=4_000)
#: Shorter trace for block_size=1 pins (one kernel pass per record).
SMALL = TRACE.head(1_500)

SCHEMES = [
    "gag-6",
    "gshare-8",
    "gap-5",
    "gsg-6",
    "pag-8-a2-ideal",
    "pag-8-a2-128x1",
    "psg-6-128x1",
    "btb-a2",
    "always-taken",
    "pap-6-a2-128x1",  # no stream kernel: exercises the auto fallback
]

CS_CONFIGS = [
    None,
    ContextSwitchConfig(interval=3_000),
    ContextSwitchConfig(interval=3_333, switch_on_traps=False),
]


def _build(name):
    return make_predictor(name, TRAINING)


class TestBlockSizeIndependence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("cs", CS_CONFIGS)
    def test_auto_backend_all_blocks(self, scheme, cs):
        baseline = simulate(_build(scheme), TRACE, context_switches=cs,
                            backend="auto")
        for bs in (4093, 1 << 16, None):
            result, backend = simulate_with_backend(
                _build(scheme), TRACE, context_switches=cs,
                backend="auto", block_size=bs,
            )
            assert result == baseline, (scheme, cs, bs, backend)

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("cs", CS_CONFIGS)
    def test_block_size_one(self, scheme, cs):
        """The degenerate partition — every record its own block —
        exercises every state-carry seam on every block boundary."""
        baseline = simulate(_build(scheme), SMALL, context_switches=cs,
                            backend="auto")
        result = simulate(_build(scheme), SMALL, context_switches=cs,
                          backend="auto", block_size=1)
        assert result == baseline, (scheme, cs)

    @pytest.mark.parametrize("scheme", ["gag-6", "pag-8-a2-ideal", "btb-a2"])
    def test_python_backend_all_blocks(self, scheme):
        cs = CS_CONFIGS[1]
        baseline = simulate(_build(scheme), TRACE, context_switches=cs,
                            backend="python")
        for bs in (1, 4093, None):
            streamed = simulate(_build(scheme), TRACE, context_switches=cs,
                                backend="python", block_size=bs)
            assert streamed == baseline, (scheme, bs)

    @pytest.mark.parametrize("scheme", ["gag-6", "gshare-8", "pag-8-a2-128x1"])
    def test_warmup_and_per_site(self, scheme):
        baseline = simulate(_build(scheme), TRACE, context_switches=CS_CONFIGS[1],
                            track_per_site=True, warmup_branches=500,
                            backend="vectorized")
        result = simulate(_build(scheme), TRACE, context_switches=CS_CONFIGS[1],
                          track_per_site=True, warmup_branches=500,
                          backend="vectorized", block_size=997)
        assert result == baseline, scheme
        small_base = simulate(_build(scheme), SMALL, context_switches=CS_CONFIGS[1],
                              track_per_site=True, warmup_branches=300,
                              backend="vectorized")
        small = simulate(_build(scheme), SMALL, context_switches=CS_CONFIGS[1],
                         track_per_site=True, warmup_branches=300,
                         backend="vectorized", block_size=1)
        assert small == small_base, scheme


class TestMillionBranchPin:
    """The ISSUE's headline pin: a 1M-branch stream is bit-identical at
    block sizes {4093, 2^16, whole-trace} on the vectorized backend and
    under the interpreted loop, with warmup and context switches on."""

    @pytest.fixture(scope="class")
    def source(self):
        return IndexedSource(
            bernoulli_outcomes(0.7, seed=17), num_records=1_000_000,
            pcs=tuple(0x100 + 8 * i for i in range(64)), name="million",
        )

    @pytest.fixture(scope="class")
    def baseline(self, source):
        cs = ContextSwitchConfig(interval=500_000)
        # Materialized reference: one kernel pass over the whole stream.
        blocks = list(source.iter_blocks(None))
        trace = blocks[0].to_trace()
        return simulate(_build("gag-12"), trace, context_switches=cs,
                        warmup_branches=1_000, backend="vectorized")

    def test_vectorized_blocks(self, source, baseline):
        cs = ContextSwitchConfig(interval=500_000)
        for bs in (4093, 1 << 16, None):
            result = simulate(_build("gag-12"), source, context_switches=cs,
                              warmup_branches=1_000, backend="vectorized",
                              block_size=bs)
            assert result.correct_predictions == baseline.correct_predictions
            assert result == baseline, bs

    def test_interpreted_blocks(self, source, baseline):
        cs = ContextSwitchConfig(interval=500_000)
        result = simulate(_build("gag-12"), source, context_switches=cs,
                          warmup_branches=1_000, backend="python",
                          block_size=4093)
        assert result == baseline


class TestStreamedContainerSource:
    def test_btrs_simulates_identically(self, tmp_path):
        path = tmp_path / "t.btrs"
        save_source(TRACE, path)
        baseline = simulate(_build("pag-8-a2-ideal"), TRACE,
                            context_switches=CS_CONFIGS[1], backend="auto")
        with open_stream(path) as streamed:
            for backend in ("auto", "python"):
                result = simulate(_build("pag-8-a2-ideal"), streamed,
                                  context_switches=CS_CONFIGS[1],
                                  backend=backend, block_size=2048)
                assert result == baseline, backend

    def test_generator_source_simulates(self):
        source = RecordStreamSource(lambda: markov_records(0.9, 0.9, seed=2),
                                    name="markov").limit(20_000)
        blocks = list(source.iter_blocks(None))
        trace = blocks[0].to_trace()
        baseline = simulate(_build("gag-8"), trace, backend="auto")
        result = simulate(_build("gag-8"), source, backend="auto",
                          block_size=4096)
        assert result.correct_predictions == baseline.correct_predictions
        assert result.conditional_branches == baseline.conditional_branches

    def test_run_case_forwards_block_size(self):
        case = BenchmarkCase(name="synth", category="int", test_trace=TRACE,
                             training_trace=TRAINING)
        base = run_case(lambda training: _build("gag-6"), case)
        streamed = run_case(lambda training: _build("gag-6"), case,
                            block_size=1024)
        assert streamed == base


class TestStreamingDispatch:
    def test_unbounded_source_rejected(self):
        source = RecordStreamSource(lambda: markov_records(0.9, 0.9))
        with pytest.raises(ValueError, match="unbounded"):
            simulate(_build("gag-6"), source)
        with pytest.raises(ValueError):
            simulate_vectorized_stream(_build("gag-6"), source)

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            simulate(_build("gag-6"), TRACE, block_size=0)

    def test_stream_kernel_support_matrix(self):
        assert stream_kernel_supports(_build("gag-6"))
        assert stream_kernel_supports(_build("pag-8-a2-128x1"))
        assert not stream_kernel_supports(_build("pap-6-a2-128x1"))
        assert not stream_kernel_supports(_build("gap-18"))  # > 16 bits

    def test_pap_falls_back_to_interpreted(self):
        result, backend = simulate_with_backend(
            _build("pap-6-a2-128x1"), TRACE, backend="auto", block_size=997)
        assert backend == "python"
        assert result == simulate(_build("pap-6-a2-128x1"), TRACE,
                                  backend="python")

    def test_vectorized_refuses_pap_streaming(self):
        with pytest.raises(KernelUnavailable):
            simulate_vectorized_stream(_build("pap-6-a2-128x1"), TRACE)

    def test_non_monotone_instret_across_blocks_refused(self):
        builder = TraceBuilder(name="bad", source="test")
        for taken in (True, False, True, False):
            builder.conditional(0x10, taken, work=3)
        trace = builder.build()

        class ShuffledBlocks:
            meta = trace.meta
            num_records = trace.num_records

            def iter_blocks(self, block_size=None):
                blocks = list(trace.iter_blocks(2))
                yield from reversed(blocks)

            def iter_tuples(self):
                for block in self.iter_blocks():
                    yield from block.iter_tuples()

        with pytest.raises(KernelUnavailable, match="instret"):
            simulate_vectorized_stream(
                _build("gag-6"), ShuffledBlocks(),
                context_switches=ContextSwitchConfig(interval=100),
            )

    def test_materialized_trace_without_block_size_unchanged(self):
        # The non-streaming fast path: same entry point, same result.
        a = simulate(_build("gag-6"), TRACE, backend="auto")
        b = simulate_vectorized(_build("gag-6"), TRACE)
        assert a == b


_RSS_SCRIPT = """
import resource, sys
from repro.predictors.registry import make_predictor
from repro.sim.engine import simulate
from repro.trace.stream import IndexedSource, bernoulli_outcomes


def peak_rss_kb():
    # VmHWM is this process's own high-water mark. ru_maxrss is wrong
    # here: a posix_spawn'ed child shares the parent's mm until exec,
    # so it inherits the parent's peak (the whole pytest session).
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


backend = sys.argv[1]
source = IndexedSource(
    bernoulli_outcomes(0.7, seed=5), num_records=10_000_000,
    pcs=tuple(0x100 + 8 * i for i in range(128)), name="rss",
)
result = simulate(make_predictor("gag-12", None), source,
                  backend=backend, block_size=1 << 16)
assert result.conditional_branches == 10_000_000, result
print(peak_rss_kb())
"""


class TestBoundedMemory:
    """A 10M-branch stream (260 MB of packed records; far more
    materialized) must simulate within a block-sized memory envelope."""

    @pytest.mark.parametrize("backend", ["vectorized", "python"])
    def test_10m_branch_rss_bounded(self, backend):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _RSS_SCRIPT, backend],
            capture_output=True, text=True, env=env, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        peak_kb = int(proc.stdout.strip().splitlines()[-1])
        # Interpreter + numpy baseline is ~100 MB; the stream adds only
        # block-sized working sets. Materializing 10M records would
        # need >500 MB, so the bound also proves nothing materialized.
        assert peak_kb < 400_000, f"peak RSS {peak_kb} KB ({backend})"
