"""Tests for the Static Training schemes (GSg / PSg)."""

import pytest

from repro.core.static_training import (
    GSgPredictor,
    PSgPredictor,
    train_global_presets,
    train_per_address_presets,
)
from repro.core.twolevel import TwoLevelConfig, make_gag
from repro.sim.engine import simulate
from repro.trace import synthetic
from repro.trace.events import TraceBuilder


def _single_branch_trace(outcomes, pc=0x10, name="t"):
    builder = TraceBuilder(name=name)
    for outcome in outcomes:
        builder.conditional(pc, outcome)
    return builder.build()


class TestGlobalTraining:
    def test_majority_direction_per_pattern(self):
        # Period-2 pattern T,N,T,N...: after history 10 (T then N) the
        # next outcome is T; after 01 (N then T) it is N.
        trace = _single_branch_trace([True, False] * 50)
        presets = train_global_presets(trace, 2)
        assert presets[0b10] is True
        assert presets[0b01] is False

    def test_ties_resolve_taken(self):
        trace = _single_branch_trace([True, False, True, True, False, False])
        presets = train_global_presets(trace, 12)
        # The all-ones initial pattern saw exactly one outcome: taken.
        assert presets[0xFFF] is True

    def test_ignores_non_conditional_records(self):
        builder = TraceBuilder()
        builder.call(0x1)
        builder.conditional(0x10, True)
        builder.unconditional(0x2)
        builder.conditional(0x10, True)
        presets = train_global_presets(builder.build(), 4)
        assert presets == {0b1111: True}

    def test_empty_trace(self):
        assert train_global_presets(_single_branch_trace([]), 4) == {}


class TestPerAddressTraining:
    def test_separates_branch_histories(self):
        builder = TraceBuilder()
        # Branch A always taken; branch B always not taken. With
        # per-address histories they train different patterns.
        for _ in range(20):
            builder.conditional(0xA, True)
            builder.conditional(0xB, False)
        presets = train_per_address_presets(builder.build(), 3)
        assert presets[0b111] is True  # A's steady pattern
        assert presets[0b000] is False  # B's steady pattern

    def test_respects_bht_capacity(self):
        trace = synthetic.interleaved(
            [synthetic.loop_source(4)] * 8, length=4000
        )
        # A 2-entry direct-mapped table thrashes: training still works,
        # it just sees post-miss reinitialised histories.
        presets = train_per_address_presets(trace, 4, bht_entries=2, bht_associativity=1)
        assert presets  # non-empty; no crash under thrashing


class TestGSgPredictor:
    def test_frozen_second_level(self):
        trace = _single_branch_trace([True] * 40)
        predictor = GSgPredictor.trained_on(trace, 4)
        # Feed contradicting outcomes: predictions must not adapt.
        for _ in range(20):
            assert predictor.predict(0x10) is True
            predictor.update(0x10, False)
        # History register is all-zero now; unseen pattern -> default taken.
        assert predictor.predict(0x10) is True

    def test_perfect_on_matching_data(self):
        pattern = [True, True, False]
        train = _single_branch_trace(pattern * 60)
        test = _single_branch_trace(pattern * 60)
        predictor = GSgPredictor.trained_on(train, 6)
        result = simulate(predictor, test)
        assert result.accuracy > 0.95

    def test_degrades_on_shifted_data(self):
        # Train on one pattern, test on its complement: worse than the
        # adaptive GAg on the same test trace (the paper's §2 argument).
        train = _single_branch_trace([True, True, False] * 60)
        test = _single_branch_trace([False, False, True] * 60)
        static = simulate(GSgPredictor.trained_on(train, 6), test).accuracy
        adaptive = simulate(make_gag(6), test).accuracy
        assert adaptive > static

    def test_context_switch_reinitialises_history(self):
        predictor = GSgPredictor(4, {})
        predictor.update(0, False)
        predictor.on_context_switch()
        assert predictor.ghr == 0b1111

    def test_name(self):
        assert GSgPredictor(12, {}).name == "GSg(HR(1,,12-sr),1xPHT(2^12,PB))"


class TestPSgPredictor:
    def test_trained_on_classmethod(self):
        trace = _single_branch_trace([True, False] * 100)
        predictor = PSgPredictor.trained_on(trace, 4)
        result = simulate(predictor, _single_branch_trace([True, False] * 100))
        assert result.accuracy > 0.9

    def test_updates_first_level_only(self):
        trace = _single_branch_trace([True] * 10)
        predictor = PSgPredictor.trained_on(trace, 4)
        predictor.predict(0x10)
        predictor.update(0x10, False)
        entry = predictor.bht.peek(0x10)
        assert entry is not None
        assert entry.value == 0b0000  # outcome-extension on first update

    def test_name(self):
        trace = _single_branch_trace([True] * 4)
        predictor = PSgPredictor.trained_on(trace, 12, bht_entries=512, bht_associativity=4)
        assert predictor.name == "PSg(BHT(512,4,12-sr),1xPHT(2^12,PB))"

    def test_context_switch_flushes_bht(self):
        predictor = PSgPredictor(TwoLevelConfig(history_bits=4), {})
        predictor.predict(0x10)
        predictor.on_context_switch()
        assert predictor.bht.peek(0x10) is None
