"""Tests for the trace cache."""

from repro.trace.cache import TraceCache
from repro.trace import synthetic


def _factory_counter():
    calls = {"count": 0}

    def factory():
        calls["count"] += 1
        return synthetic.loop_trace(iterations=5, trip_count=3)

    return factory, calls


class TestMemoryCache:
    def test_factory_called_once_per_key(self):
        cache = TraceCache()
        factory, calls = _factory_counter()
        cache.get("bench", "data", 1, factory)
        cache.get("bench", "data", 1, factory)
        assert calls["count"] == 1
        assert len(cache) == 1

    def test_distinct_keys_generate_separately(self):
        cache = TraceCache()
        factory, calls = _factory_counter()
        cache.get("bench", "data", 1, factory)
        cache.get("bench", "data", 2, factory)
        cache.get("bench", "other", 1, factory)
        cache.get("other", "data", 1, factory)
        assert calls["count"] == 4

    def test_returns_same_object(self):
        cache = TraceCache()
        factory, _calls = _factory_counter()
        first = cache.get("b", "d", 1, factory)
        second = cache.get("b", "d", 1, factory)
        assert first is second

    def test_clear(self):
        cache = TraceCache()
        factory, calls = _factory_counter()
        cache.get("b", "d", 1, factory)
        cache.clear()
        cache.get("b", "d", 1, factory)
        assert calls["count"] == 2


class TestDiskCache:
    def test_persists_across_instances(self, tmp_path):
        factory, calls = _factory_counter()
        first = TraceCache(directory=tmp_path)
        trace = first.get("b", "d", 1, factory)
        second = TraceCache(directory=tmp_path)
        restored = second.get("b", "d", 1, factory)
        assert calls["count"] == 1
        assert len(restored) == len(trace)
        assert [r.taken for r in restored] == [r.taken for r in trace]

    def test_corrupt_file_regenerates(self, tmp_path):
        factory, calls = _factory_counter()
        cache = TraceCache(directory=tmp_path)
        cache.get("b", "d", 1, factory)
        for path in tmp_path.glob("*.btb"):
            path.write_bytes(b"garbage")
        fresh = TraceCache(directory=tmp_path)
        fresh.get("b", "d", 1, factory)
        assert calls["count"] == 2

    def test_directory_created(self, tmp_path):
        target = tmp_path / "nested" / "cache"
        TraceCache(directory=target)
        assert target.is_dir()
