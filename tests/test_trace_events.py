"""Tests for branch records, traces and the trace builder."""

import pytest

from repro.trace.events import BranchClass, BranchRecord, Trace, TraceBuilder, TraceMeta


class TestBranchRecord:
    def test_defaults(self):
        record = BranchRecord(pc=0x100, taken=True)
        assert record.branch_class is BranchClass.CONDITIONAL
        assert record.is_conditional
        assert not record.trap

    def test_non_conditional(self):
        record = BranchRecord(pc=1, taken=True, branch_class=BranchClass.CALL)
        assert not record.is_conditional

    def test_short_names(self):
        assert BranchClass.CONDITIONAL.short_name == "cond"
        assert BranchClass.RETURN.short_name == "return"


class TestTraceBuilder:
    def test_instret_accumulates_work_and_branches(self):
        builder = TraceBuilder()
        builder.instructions(10)
        builder.conditional(0x1, True, work=5)
        # 10 + 5 work + the branch itself.
        assert builder.instret == 16
        trace = builder.build()
        assert trace[0].instret == 16

    def test_branch_returns_its_outcome(self):
        builder = TraceBuilder()
        assert builder.conditional(0x1, True) is True
        assert builder.conditional(0x1, False) is False

    def test_non_conditional_forced_taken(self):
        builder = TraceBuilder()
        builder.branch(0x1, False, BranchClass.CALL)
        assert builder.build()[0].taken is True

    def test_trap_attaches_to_next_branch(self):
        builder = TraceBuilder()
        builder.conditional(0x1, True)
        builder.trap()
        builder.conditional(0x2, False)
        builder.conditional(0x3, True)
        trace = builder.build()
        assert [r.trap for r in trace] == [False, True, False]

    def test_negative_work_rejected(self):
        builder = TraceBuilder()
        with pytest.raises(ValueError):
            builder.instructions(-1)

    def test_convenience_wrappers_set_classes(self):
        builder = TraceBuilder()
        builder.conditional(1, True)
        builder.unconditional(2)
        builder.call(3)
        builder.ret(4)
        classes = [r.branch_class for r in builder.build()]
        assert classes == [
            BranchClass.CONDITIONAL,
            BranchClass.UNCONDITIONAL,
            BranchClass.CALL,
            BranchClass.RETURN,
        ]

    def test_meta_propagates(self):
        builder = TraceBuilder(name="bench", dataset="input1", source="workload")
        builder.conditional(1, True)
        trace = builder.build()
        assert trace.meta.name == "bench"
        assert trace.meta.dataset == "input1"
        assert trace.meta.source == "workload"
        assert trace.meta.total_instructions == builder.instret


class TestTrace:
    def _trace(self):
        builder = TraceBuilder(name="t")
        builder.conditional(0xA, True, work=2)
        builder.call(0xB)
        builder.conditional(0xA, False, work=2)
        builder.conditional(0xC, True, work=2)
        return builder.build()

    def test_len_and_getitem(self):
        trace = self._trace()
        assert len(trace) == 4
        assert trace[0].pc == 0xA
        assert trace[1].branch_class is BranchClass.CALL

    def test_iteration_yields_records(self):
        records = list(self._trace())
        assert all(isinstance(r, BranchRecord) for r in records)

    def test_iter_tuples_matches_records(self):
        trace = self._trace()
        for record, row in zip(trace, trace.iter_tuples()):
            assert (record.pc, record.taken) == (row[0], row[1])

    def test_conditional_only(self):
        conditional = self._trace().conditional_only()
        assert len(conditional) == 3
        assert all(r.is_conditional for r in conditional)

    def test_head(self):
        assert len(self._trace().head(2)) == 2

    def test_select(self):
        selected = self._trace().select([0, 3])
        assert [r.pc for r in selected] == [0xA, 0xC]

    def test_static_branch_sites_conditional_only(self):
        assert self._trace().static_branch_sites() == [0xA, 0xC]

    def test_num_conditional(self):
        assert self._trace().num_conditional() == 3

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(TraceMeta(), [1], [True, False], [0], [0], [0], [False])

    def test_repr_mentions_counts(self):
        text = repr(self._trace())
        assert "records=4" in text
        assert "conditional=3" in text
