"""Tests for trace serialization (text + binary round-trips)."""

import io

import pytest

from repro.trace.events import BranchClass, BranchRecord, TraceBuilder
from repro.trace.io import (
    TraceFormatError,
    dumps,
    load_trace,
    loads,
    read_binary,
    read_text,
    save_trace,
    trace_from_records,
    write_binary,
    write_text,
)


def _sample_trace():
    builder = TraceBuilder(name="sample", dataset="d0", source="test")
    builder.conditional(0x1000, True, work=3)
    builder.trap()
    builder.conditional(0x1004, False, work=1)
    builder.call(0x2000, target=0x3000)
    builder.ret(0x3004)
    builder.unconditional(0x1010, target=0x1000)
    return builder.build()


def _traces_equal(a, b):
    assert a.meta == b.meta
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left == right


class TestTextFormat:
    def test_round_trip(self):
        trace = _sample_trace()
        buffer = io.StringIO()
        write_text(trace, buffer)
        buffer.seek(0)
        _traces_equal(trace, read_text(buffer))

    def test_header_contains_metadata(self):
        buffer = io.StringIO()
        write_text(_sample_trace(), buffer)
        text = buffer.getvalue()
        assert "# name=sample" in text
        assert "# dataset=d0" in text

    def test_blank_lines_and_unknown_comments_ignored(self):
        buffer = io.StringIO()
        write_text(_sample_trace(), buffer)
        content = "# oddball comment\n\n" + buffer.getvalue()
        trace = read_text(io.StringIO(content))
        assert len(trace) == 5

    def test_malformed_line_raises_with_line_number(self):
        with pytest.raises(TraceFormatError, match="line 1"):
            read_text(io.StringIO("1 2 3\n"))

    def test_bad_class_name(self):
        with pytest.raises(TraceFormatError):
            read_text(io.StringIO("4096 1 weird 0 1 0\n"))


class TestBinaryFormat:
    def test_round_trip(self):
        trace = _sample_trace()
        buffer = io.BytesIO()
        write_binary(trace, buffer)
        buffer.seek(0)
        _traces_equal(trace, read_binary(buffer))

    def test_dumps_loads(self):
        trace = _sample_trace()
        _traces_equal(trace, loads(dumps(trace)))

    def test_bad_magic(self):
        data = bytearray(dumps(_sample_trace()))
        data[0:4] = b"NOPE"
        with pytest.raises(TraceFormatError, match="magic"):
            loads(bytes(data))

    def test_truncated_payload(self):
        data = dumps(_sample_trace())
        with pytest.raises(TraceFormatError, match="truncated"):
            loads(data[:-4])

    def test_truncated_header(self):
        with pytest.raises(TraceFormatError):
            loads(b"BT")

    def test_empty_trace_round_trip(self):
        trace = TraceBuilder(name="empty").build()
        restored = loads(dumps(trace))
        assert len(restored) == 0
        assert restored.meta.name == "empty"

    def test_unicode_metadata(self):
        builder = TraceBuilder(name="bénch✓", dataset="données")
        builder.conditional(1, True)
        restored = loads(dumps(builder.build()))
        assert restored.meta.name == "bénch✓"


class TestFileHelpers:
    def test_suffix_selects_format(self, tmp_path):
        trace = _sample_trace()
        text_path = tmp_path / "t.btr"
        binary_path = tmp_path / "t.btb"
        save_trace(trace, text_path)
        save_trace(trace, binary_path)
        assert text_path.read_text().startswith("# name=")
        assert binary_path.read_bytes()[:4] == b"BTRC"
        _traces_equal(trace, load_trace(text_path))
        _traces_equal(trace, load_trace(binary_path))

    def test_trace_from_records(self):
        records = [
            BranchRecord(pc=1, taken=True, instret=1),
            BranchRecord(pc=2, taken=False, branch_class=BranchClass.CALL, instret=5),
        ]
        trace = trace_from_records(records, name="manual")
        assert len(trace) == 2
        assert trace.meta.total_instructions == 5

    def test_large_trace_round_trip(self):
        builder = TraceBuilder(name="big")
        for i in range(20_000):
            builder.conditional(0x1000 + (i % 64) * 4, i % 3 != 0, work=2)
        trace = builder.build()
        _traces_equal(trace, loads(dumps(trace)))
