"""Tests for trace serialization (text + binary round-trips)."""

import io

import pytest

from repro.trace.events import BranchClass, BranchRecord, TraceBuilder
from repro.trace.io import (
    TraceFormatError,
    dumps,
    load_trace,
    loads,
    read_binary,
    read_text,
    save_trace,
    trace_from_records,
    write_binary,
    write_text,
)


def _sample_trace():
    builder = TraceBuilder(name="sample", dataset="d0", source="test")
    builder.conditional(0x1000, True, work=3)
    builder.trap()
    builder.conditional(0x1004, False, work=1)
    builder.call(0x2000, target=0x3000)
    builder.ret(0x3004)
    builder.unconditional(0x1010, target=0x1000)
    return builder.build()


def _traces_equal(a, b):
    assert a.meta == b.meta
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left == right


class TestTextFormat:
    def test_round_trip(self):
        trace = _sample_trace()
        buffer = io.StringIO()
        write_text(trace, buffer)
        buffer.seek(0)
        _traces_equal(trace, read_text(buffer))

    def test_header_contains_metadata(self):
        buffer = io.StringIO()
        write_text(_sample_trace(), buffer)
        text = buffer.getvalue()
        assert "# name=sample" in text
        assert "# dataset=d0" in text

    def test_blank_lines_and_unknown_comments_ignored(self):
        buffer = io.StringIO()
        write_text(_sample_trace(), buffer)
        content = "# oddball comment\n\n" + buffer.getvalue()
        trace = read_text(io.StringIO(content))
        assert len(trace) == 5

    def test_malformed_line_raises_with_line_number(self):
        with pytest.raises(TraceFormatError, match="line 1"):
            read_text(io.StringIO("1 2 3\n"))

    def test_bad_class_name(self):
        with pytest.raises(TraceFormatError):
            read_text(io.StringIO("4096 1 weird 0 1 0\n"))


class TestBinaryFormat:
    def test_round_trip(self):
        trace = _sample_trace()
        buffer = io.BytesIO()
        write_binary(trace, buffer)
        buffer.seek(0)
        _traces_equal(trace, read_binary(buffer))

    def test_dumps_loads(self):
        trace = _sample_trace()
        _traces_equal(trace, loads(dumps(trace)))

    def test_bad_magic(self):
        data = bytearray(dumps(_sample_trace()))
        data[0:4] = b"NOPE"
        with pytest.raises(TraceFormatError, match="magic"):
            loads(bytes(data))

    def test_truncated_payload(self):
        data = dumps(_sample_trace())
        with pytest.raises(TraceFormatError, match="truncated"):
            loads(data[:-4])

    def test_truncated_header(self):
        with pytest.raises(TraceFormatError):
            loads(b"BT")

    def test_empty_trace_round_trip(self):
        trace = TraceBuilder(name="empty").build()
        restored = loads(dumps(trace))
        assert len(restored) == 0
        assert restored.meta.name == "empty"

    def test_unicode_metadata(self):
        builder = TraceBuilder(name="bénch✓", dataset="données")
        builder.conditional(1, True)
        restored = loads(dumps(builder.build()))
        assert restored.meta.name == "bénch✓"


class TestFileHelpers:
    def test_suffix_selects_format(self, tmp_path):
        trace = _sample_trace()
        text_path = tmp_path / "t.btr"
        binary_path = tmp_path / "t.btb"
        save_trace(trace, text_path)
        save_trace(trace, binary_path)
        assert text_path.read_text().startswith("# name=")
        assert binary_path.read_bytes()[:4] == b"BTRC"
        _traces_equal(trace, load_trace(text_path))
        _traces_equal(trace, load_trace(binary_path))

    def test_trace_from_records(self):
        records = [
            BranchRecord(pc=1, taken=True, instret=1),
            BranchRecord(pc=2, taken=False, branch_class=BranchClass.CALL, instret=5),
        ]
        trace = trace_from_records(records, name="manual")
        assert len(trace) == 2
        assert trace.meta.total_instructions == 5

    def test_large_trace_round_trip(self):
        builder = TraceBuilder(name="big")
        for i in range(20_000):
            builder.conditional(0x1000 + (i % 64) * 4, i % 3 != 0, work=2)
        trace = builder.build()
        _traces_equal(trace, loads(dumps(trace)))


class TestBinaryValidation:
    """Unrepresentable values fail loudly, before any bytes are written."""

    def _trace_with(self, **overrides):
        from repro.trace.events import Trace, TraceMeta

        columns = {
            "pc": [0x1000],
            "taken": [True],
            "cls": [int(BranchClass.CONDITIONAL)],
            "target": [0],
            "instret": [4],
            "trap": [False],
        }
        columns.update(overrides)
        return Trace(TraceMeta(name="bad"), **columns)

    @pytest.mark.parametrize(
        "column,value",
        [("pc", 1 << 63), ("target", -(1 << 63) - 1), ("instret", 1 << 70)],
    )
    def test_out_of_range_column_raises_before_writing(self, column, value):
        trace = self._trace_with(**{column: [value]})
        stream = io.BytesIO()
        with pytest.raises(TraceFormatError, match=column):
            write_binary(trace, stream)
        assert stream.getvalue() == b""  # nothing written, not even a header

    def test_out_of_range_total_instructions(self):
        from repro.trace.events import Trace, TraceMeta

        trace = Trace(
            TraceMeta(name="bad", total_instructions=1 << 64),
            [], [], [], [], [], [],
        )
        stream = io.BytesIO()
        with pytest.raises(TraceFormatError, match="total_instructions"):
            write_binary(trace, stream)
        assert stream.getvalue() == b""

    def test_failed_save_leaves_no_file(self, tmp_path):
        trace = self._trace_with(pc=[1 << 63])
        path = tmp_path / "bad.btb"
        with pytest.raises(TraceFormatError):
            save_trace(trace, path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []  # no .tmp leftovers either

    def test_failed_save_preserves_existing_file(self, tmp_path):
        path = tmp_path / "trace.btb"
        good = _sample_trace()
        save_trace(good, path)
        with pytest.raises(TraceFormatError):
            save_trace(self._trace_with(instret=[1 << 65]), path)
        _traces_equal(good, load_trace(path))


class TestTextMetadata:
    """Missing/unknown metadata is surfaced, not silently defaulted."""

    def _text_without_total(self):
        buffer = io.StringIO()
        write_text(_sample_trace(), buffer)
        return "\n".join(
            line for line in buffer.getvalue().splitlines()
            if not line.startswith("# total_instructions=")
        )

    def test_missing_total_instructions_warns_and_falls_back(self):
        from repro.trace.io import TraceFormatWarning

        with pytest.warns(TraceFormatWarning, match="total_instructions"):
            trace = read_text(io.StringIO(self._text_without_total()))
        last_instret = list(trace.iter_tuples())[-1][4]
        assert trace.meta.total_instructions == last_instret

    def test_missing_total_instructions_error_mode(self):
        with pytest.raises(TraceFormatError, match="total_instructions"):
            read_text(io.StringIO(self._text_without_total()), missing_meta="error")

    def test_missing_total_instructions_ignore_mode(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            trace = read_text(
                io.StringIO(self._text_without_total()), missing_meta="ignore"
            )
        assert trace.meta.total_instructions > 0

    def test_invalid_missing_meta_mode_rejected(self):
        with pytest.raises(ValueError, match="missing_meta"):
            read_text(io.StringIO(""), missing_meta="whatever")

    def test_unknown_meta_keys_round_trip(self):
        buffer = io.StringIO()
        write_text(_sample_trace(), buffer)
        content = "# compiler=gcc-12\n# opt_level=O2\n" + buffer.getvalue()
        trace = read_text(io.StringIO(content))
        assert trace.meta.extra == (("compiler", "gcc-12"), ("opt_level", "O2"))
        second = io.StringIO()
        write_text(trace, second)
        second.seek(0)
        assert read_text(second).meta.extra == trace.meta.extra

    def test_declared_record_count_mismatch(self):
        buffer = io.StringIO()
        write_text(_sample_trace(), buffer)
        content = buffer.getvalue().replace("# records=", "# records=9")
        with pytest.raises(TraceFormatError, match="records"):
            read_text(io.StringIO(content))

    def test_load_trace_forwards_missing_meta(self, tmp_path):
        path = tmp_path / "trace.btr"
        path.write_text(self._text_without_total() + "\n")
        with pytest.raises(TraceFormatError):
            load_trace(path, missing_meta="error")
