"""Tests for trace statistics (Table 1 / Figure 4 inputs)."""

import pytest

from repro.trace.events import BranchClass, TraceBuilder
from repro.trace.stats import compute_stats, per_site_bias


def _mixed_trace():
    builder = TraceBuilder(name="mixed")
    builder.instructions(100)
    for i in range(8):
        builder.conditional(0xA, i % 2 == 0, work=3)
    for i in range(2):
        builder.conditional(0xB, True, work=3)
    builder.call(0xC, work=3)
    builder.ret(0xD)
    builder.unconditional(0xE)
    builder.trap()
    builder.conditional(0xA, False, work=3)
    return builder.build()


class TestComputeStats:
    def test_counts(self):
        stats = compute_stats(_mixed_trace())
        assert stats.dynamic_branches == 14
        assert stats.dynamic_conditional == 11
        assert stats.static_conditional_sites == 2
        assert stats.trap_count == 1

    def test_class_mix_sums_to_one(self):
        mix = compute_stats(_mixed_trace()).class_mix()
        total = mix.conditional + mix.unconditional + mix.call + mix.ret
        assert total == pytest.approx(1.0)

    def test_conditional_fraction(self):
        stats = compute_stats(_mixed_trace())
        assert stats.conditional_fraction == pytest.approx(11 / 14)

    def test_taken_rate(self):
        stats = compute_stats(_mixed_trace())
        # 0xA: 4 of 9 taken; 0xB: 2 of 2 -> 6 of 11.
        assert stats.taken_rate == pytest.approx(6 / 11)

    def test_branch_fraction(self):
        stats = compute_stats(_mixed_trace())
        assert 0 < stats.branch_fraction < 1
        assert stats.branch_fraction == pytest.approx(
            stats.dynamic_branches / stats.total_instructions
        )

    def test_empty_trace(self):
        stats = compute_stats(TraceBuilder().build())
        assert stats.dynamic_branches == 0
        assert stats.branch_fraction == 0.0
        assert stats.conditional_fraction == 0.0
        assert stats.taken_rate == 0.0

    def test_class_mix_as_dict(self):
        mix = compute_stats(_mixed_trace()).class_mix()
        assert set(mix.as_dict()) == {"cond", "uncond", "call", "return"}


class TestPerSiteBias:
    def test_bias_per_site(self):
        bias = per_site_bias(_mixed_trace())
        assert bias[0xA] == pytest.approx(4 / 9)
        assert bias[0xB] == 1.0

    def test_ignores_non_conditional(self):
        bias = per_site_bias(_mixed_trace())
        assert 0xC not in bias
        assert 0xE not in bias
