"""Tests for the streaming trace substrate (repro.trace.stream).

Covers the BTRS container (writer atomicity, reader validation,
truncation/corruption errors), the TraceSource implementations
(StreamedTrace, RecordStreamSource, IndexedSource) and their
block-partition invariance, content digests, and the streamed
trace-cache round-trip.
"""

import hashlib
import os
import struct

import pytest

from repro.sim.parallel import trace_digest
from repro.trace.cache import TraceCache
from repro.trace.events import BranchClass, Trace, TraceBuilder
from repro.trace.io import TraceFormatError, dumps as trace_dumps, load_trace, save_trace
from repro.trace.stream import (
    DEFAULT_BLOCK_SIZE,
    STREAM_MAGIC,
    STREAM_VERSION,
    IndexedSource,
    RecordStreamSource,
    StreamedTrace,
    TraceSource,
    TraceWriter,
    bernoulli_outcomes,
    content_digest,
    open_stream,
    open_trace_source,
    pattern_outcomes,
    save_source,
)
from repro.trace.synthetic import (
    biased_records,
    biased_trace,
    loop_records,
    loop_trace,
    markov_records,
    markov_trace,
    periodic_records,
    periodic_trace,
)


def _mixed_trace(n=500):
    builder = TraceBuilder(name="mixed", dataset="d", source="test")
    for i in range(n):
        builder.conditional(0x1000 + (i % 7) * 4, (i * 5) % 3 != 0, work=2)
        if i % 50 == 49:
            builder.trap()
        if i % 11 == 0:
            builder.call(0x2000, target=0x3000, work=1)
    return builder.build()


def _assert_same_records(a, b):
    assert a.meta.name == b.meta.name
    assert a.meta.total_instructions == b.meta.total_instructions
    assert list(a.iter_tuples()) == list(b.iter_tuples())


class TestTraceWriter:
    def test_round_trip(self, tmp_path):
        trace = _mixed_trace()
        path = tmp_path / "t.btrs"
        with TraceWriter(path, name="mixed", dataset="d", source="test") as w:
            w.append_trace(trace)
            w.finalize(total_instructions=trace.meta.total_instructions)
        streamed = open_stream(path)
        assert streamed.num_records == len(trace)
        _assert_same_records(trace, streamed)
        streamed.close()

    def test_incremental_appends_equal_bulk(self, tmp_path):
        trace = _mixed_trace()
        bulk, inc = tmp_path / "bulk.btrs", tmp_path / "inc.btrs"
        with TraceWriter(bulk) as w:
            w.append_trace(trace)
            w.finalize(trace.meta.total_instructions)
        with TraceWriter(inc) as w:
            tuples = list(trace.iter_tuples())
            for i in range(0, len(tuples), 37):
                w.append_tuples(tuples[i:i + 37])
            w.finalize(trace.meta.total_instructions)
        # Identity metadata differs (names), but the record payload is
        # byte-identical from data_offset on.
        a, b = open_stream(bulk), open_stream(inc)
        assert list(a.iter_tuples()) == list(b.iter_tuples())
        a.close(), b.close()

    def test_nothing_published_before_finalize(self, tmp_path):
        path = tmp_path / "t.btrs"
        writer = TraceWriter(path)
        writer.append_tuples([(1, True, 0, 0, 5, False)])
        assert not path.exists()
        writer.finalize()
        assert path.exists()

    def test_abort_leaves_no_files(self, tmp_path):
        path = tmp_path / "t.btrs"
        writer = TraceWriter(path)
        writer.append_tuples([(1, True, 0, 0, 5, False)])
        writer.abort()
        assert list(tmp_path.iterdir()) == []

    def test_exception_in_context_aborts(self, tmp_path):
        path = tmp_path / "t.btrs"
        with pytest.raises(RuntimeError):
            with TraceWriter(path) as w:
                w.append_tuples([(1, True, 0, 0, 5, False)])
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_write_after_close_rejected(self, tmp_path):
        writer = TraceWriter(tmp_path / "t.btrs")
        writer.finalize()
        with pytest.raises(ValueError):
            writer.append_tuples([(1, True, 0, 0, 5, False)])

    def test_out_of_range_record_reports_index(self, tmp_path):
        writer = TraceWriter(tmp_path / "t.btrs")
        writer.append_tuples([(1, True, 0, 0, 5, False)])
        with pytest.raises(TraceFormatError, match="record 1"):
            writer.append_tuples([(1 << 70, True, 0, 0, 6, False)])
        writer.abort()

    def test_empty_container(self, tmp_path):
        path = tmp_path / "empty.btrs"
        with TraceWriter(path, name="empty"):
            pass
        streamed = open_stream(path)
        assert streamed.num_records == 0
        assert list(streamed.iter_blocks(8)) == []
        assert list(streamed.iter_tuples()) == []
        streamed.close()


def _container(tmp_path, trace=None):
    trace = _mixed_trace() if trace is None else trace
    path = tmp_path / "c.btrs"
    save_source(trace, path)
    return trace, path


class TestStreamedTrace:
    def test_blocks_partition_records(self, tmp_path):
        trace, path = _container(tmp_path)
        streamed = open_stream(path)
        for bs in (1, 7, 64, 10 ** 9, None):
            blocks = list(streamed.iter_blocks(bs))
            tuples = [t for b in blocks for t in b.iter_tuples()]
            assert tuples == list(trace.iter_tuples())
            starts = [b.start for b in blocks]
            assert starts == sorted(starts)
            if bs not in (None, 10 ** 9):
                assert all(len(b) <= bs for b in blocks)
        streamed.close()

    def test_iteration_repeatable(self, tmp_path):
        _trace, path = _container(tmp_path)
        streamed = open_stream(path)
        assert list(streamed.iter_tuples()) == list(streamed.iter_tuples())
        streamed.close()

    def test_head_and_materialize(self, tmp_path):
        trace, path = _container(tmp_path)
        with open_stream(path) as streamed:
            _assert_same_records(trace, streamed.materialize())
            head = streamed.head(10)
            assert list(head.iter_tuples()) == list(trace.iter_tuples())[:10]
            assert len(streamed.head(10 ** 9)) == len(trace)

    def test_satisfies_protocol(self, tmp_path):
        _trace, path = _container(tmp_path)
        with open_stream(path) as streamed:
            assert isinstance(streamed, TraceSource)
        assert isinstance(_trace, TraceSource)

    def test_bad_block_size(self, tmp_path):
        _trace, path = _container(tmp_path)
        with open_stream(path) as streamed:
            with pytest.raises(ValueError):
                list(streamed.iter_blocks(0))


class TestContainerValidation:
    def test_bad_magic(self, tmp_path):
        _trace, path = _container(tmp_path)
        data = bytearray(path.read_bytes())
        data[:4] = b"NOPE"
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="magic"):
            open_stream(path)

    def test_unsupported_version(self, tmp_path):
        _trace, path = _container(tmp_path)
        data = bytearray(path.read_bytes())
        data[4:6] = struct.pack("<H", STREAM_VERSION + 1)
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="version"):
            open_stream(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "t.btrs"
        path.write_bytes(STREAM_MAGIC + b"\x01\x00")
        with pytest.raises(TraceFormatError, match="truncated"):
            open_stream(path)

    def test_truncated_records(self, tmp_path):
        _trace, path = _container(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-13])  # chop half a record off the end
        with pytest.raises(TraceFormatError, match="truncated container"):
            open_stream(path)

    def test_truncated_header_strings(self, tmp_path):
        _trace, path = _container(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:36])  # header survives, strings cut short
        with pytest.raises(TraceFormatError, match="truncated"):
            open_stream(path)

    def test_overlapping_data_offset(self, tmp_path):
        _trace, path = _container(tmp_path)
        data = bytearray(path.read_bytes())
        data[16:24] = struct.pack("<Q", 4)  # inside the header
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="overlaps"):
            open_stream(path)


class TestRecordStreamSource:
    def test_unbounded_reports_none(self):
        source = RecordStreamSource(lambda: loop_records(4))
        assert source.num_records is None
        with pytest.raises(ValueError):
            list(source.iter_blocks(None))

    def test_limit_bounds_iteration(self):
        source = RecordStreamSource(lambda: loop_records(4)).limit(100)
        assert source.num_records == 100
        tuples = list(source.iter_tuples())
        assert len(tuples) == 100
        blocks = list(source.iter_blocks(33))
        assert [t for b in blocks for t in b.iter_tuples()] == tuples

    @pytest.mark.parametrize("records,trace", [
        (lambda: loop_records(5), lambda: loop_trace(40, trip_count=5)),
        (lambda: periodic_records([True, True, False]),
         lambda: periodic_trace([True, True, False], repeats=67)),
        (lambda: biased_records(0.7, seed=3),
         lambda: biased_trace(200, 0.7, seed=3)),
        (lambda: markov_records(0.8, 0.6, seed=5),
         lambda: markov_trace(200, 0.8, 0.6, seed=5)),
    ])
    def test_generators_match_materialized_twins(self, records, trace):
        """The endless *_records generators replay the builder-based
        synthetic traces record for record (pc, direction and instret
        accounting all included)."""
        materialized = list(trace().iter_tuples())
        source = RecordStreamSource(records).limit(len(materialized))
        assert list(source.iter_tuples()) == materialized

    def test_generator_instret_is_monotone(self):
        source = RecordStreamSource(lambda: markov_records(0.9, 0.9)).limit(50)
        instret = [t[4] for t in source.iter_tuples()]
        assert instret == sorted(instret) and len(set(instret)) == len(instret)


class TestIndexedSource:
    def test_partition_independence(self):
        source = IndexedSource(bernoulli_outcomes(0.6, seed=9),
                               num_records=1000, pcs=(0x10, 0x20, 0x30))
        reference = list(source.iter_blocks(1000))
        ref_tuples = [t for b in reference for t in b.iter_tuples()]
        for bs in (1, 7, 333, 1024):
            tuples = [t for b in source.iter_blocks(bs) for t in b.iter_tuples()]
            assert tuples == ref_tuples

    def test_pattern_outcomes_cycle(self):
        source = IndexedSource(pattern_outcomes([True, False, False]),
                               num_records=9)
        directions = [t[1] for t in source.iter_tuples()]
        assert directions == [True, False, False] * 3

    def test_limit_and_unbounded(self):
        unbounded = IndexedSource(pattern_outcomes([True]))
        assert unbounded.num_records is None
        bounded = unbounded.limit(12)
        assert bounded.num_records == 12
        assert len(list(bounded.iter_tuples())) == 12

    def test_bernoulli_rate(self):
        source = IndexedSource(bernoulli_outcomes(0.25, seed=1),
                               num_records=20_000)
        rate = sum(t[1] for t in source.iter_tuples()) / 20_000
        assert abs(rate - 0.25) < 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            bernoulli_outcomes(1.5)
        with pytest.raises(ValueError):
            pattern_outcomes([])
        with pytest.raises(ValueError):
            IndexedSource(pattern_outcomes([True]), pcs=())


class TestSaveSourceAndDigest:
    def test_save_source_formats_round_trip(self, tmp_path):
        trace = _mixed_trace()
        for suffix in (".btb", ".btr", ".btrs"):
            path = tmp_path / f"t{suffix}"
            save_source(trace, path, block_size=37)
            _assert_same_records(trace, load_trace(path))

    def test_unbounded_rejected(self, tmp_path):
        source = RecordStreamSource(lambda: loop_records(4))
        with pytest.raises(ValueError):
            save_source(source, tmp_path / "t.btrs")
        with pytest.raises(ValueError):
            content_digest(source)

    def test_digest_matches_trace_digest(self, tmp_path):
        trace = _mixed_trace()
        expected = hashlib.sha256(trace_dumps(trace)).hexdigest()
        assert content_digest(trace) == expected
        assert trace_digest(trace) == expected
        path = tmp_path / "t.btrs"
        save_source(trace, path)
        with open_stream(path) as streamed:
            assert content_digest(streamed, block_size=41) == expected
            assert trace_digest(streamed) == expected

    def test_digest_block_size_independent(self):
        trace = _mixed_trace()
        digests = {content_digest(trace, block_size=bs) for bs in (1, 13, None)}
        assert len(digests) == 1

    def test_save_trace_dispatches_btrs(self, tmp_path):
        trace = _mixed_trace()
        path = tmp_path / "t.btrs"
        save_trace(trace, path)
        assert path.read_bytes()[:4] == STREAM_MAGIC
        _assert_same_records(trace, load_trace(path))

    def test_open_trace_source_sniffs_magic(self, tmp_path):
        trace = _mixed_trace()
        disguised = tmp_path / "container.btb"  # wrong suffix on purpose
        save_source(trace, tmp_path / "c.btrs")
        os.replace(tmp_path / "c.btrs", disguised)
        source = open_trace_source(disguised)
        assert isinstance(source, StreamedTrace)
        _assert_same_records(trace, source.materialize())
        source.close()

    def test_open_trace_source_loads_plain_formats(self, tmp_path):
        trace = _mixed_trace()
        path = tmp_path / "t.btb"
        save_trace(trace, path)
        source = open_trace_source(path)
        assert isinstance(source, Trace)


class TestCacheIntegration:
    def test_store_streamed_round_trip(self, tmp_path):
        trace = _mixed_trace()
        cache = TraceCache(tmp_path / "cache")
        stored = cache.store_streamed(trace)
        digest = trace_digest(trace)
        assert stored is not None and stored.name == f"{digest}.btrs"
        with cache.open_streamed(digest) as streamed:
            _assert_same_records(trace, streamed.materialize())

    def test_store_streamed_idempotent(self, tmp_path):
        trace = _mixed_trace()
        cache = TraceCache(tmp_path / "cache")
        first = cache.store_streamed(trace)
        mtime = first.stat().st_mtime_ns
        assert cache.store_streamed(trace) == first
        assert first.stat().st_mtime_ns == mtime

    def test_memory_only_cache_returns_none(self):
        cache = TraceCache()
        assert cache.store_streamed(_mixed_trace()) is None
        assert cache.open_streamed("00ff") is None

    def test_open_streamed_missing(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        assert cache.open_streamed("0" * 64) is None


class TestTraceBlockApi:
    def test_trace_iter_blocks(self):
        trace = _mixed_trace(100)
        blocks = list(trace.iter_blocks(13))
        assert [t for b in blocks for t in b.iter_tuples()] == list(trace.iter_tuples())
        assert blocks[0].meta == trace.meta
        assert trace.num_records == len(trace)

    def test_block_to_trace(self):
        trace = _mixed_trace(40)
        block = next(iter(trace.iter_blocks(len(trace))))
        _assert_same_records(trace, block.to_trace())

    def test_default_block_size_sane(self):
        assert DEFAULT_BLOCK_SIZE >= 1024


class TestClassMix:
    def test_streamed_stats_match(self, tmp_path):
        from repro.trace.stats import compute_stats

        trace, path = _container(tmp_path)
        with open_stream(path) as streamed:
            assert compute_stats(streamed) == compute_stats(trace)
        assert compute_stats(trace).class_counts[BranchClass.CONDITIONAL] > 0
