"""Tests for the synthetic trace generators."""

import pytest

from repro.trace import synthetic
from repro.trace.stats import compute_stats


class TestLoopTrace:
    def test_length(self):
        trace = synthetic.loop_trace(iterations=10, trip_count=5)
        assert len(trace) == 50

    def test_taken_pattern(self):
        trace = synthetic.loop_trace(iterations=2, trip_count=3)
        assert [r.taken for r in trace] == [True, True, False, True, True, False]

    def test_trip_count_one_never_taken(self):
        trace = synthetic.loop_trace(iterations=4, trip_count=1)
        assert all(not r.taken for r in trace)

    def test_rejects_zero_trip(self):
        with pytest.raises(ValueError):
            synthetic.loop_trace(iterations=1, trip_count=0)

    def test_single_site(self):
        trace = synthetic.loop_trace(iterations=5, trip_count=4, pc=0x42)
        assert trace.static_branch_sites() == [0x42]


class TestPeriodicTrace:
    def test_pattern_repeats(self):
        trace = synthetic.periodic_trace([True, False, False], repeats=2)
        assert [r.taken for r in trace] == [True, False, False, True, False, False]

    def test_rejects_empty_pattern(self):
        with pytest.raises(ValueError):
            synthetic.periodic_trace([], repeats=3)


class TestBiasedTrace:
    def test_empirical_rate_near_parameter(self):
        trace = synthetic.biased_trace(20_000, taken_probability=0.65, seed=7)
        stats = compute_stats(trace)
        assert stats.taken_rate == pytest.approx(0.65, abs=0.02)

    def test_deterministic_given_seed(self):
        a = synthetic.biased_trace(100, 0.5, seed=3)
        b = synthetic.biased_trace(100, 0.5, seed=3)
        assert [r.taken for r in a] == [r.taken for r in b]

    def test_different_seeds_differ(self):
        a = synthetic.biased_trace(100, 0.5, seed=3)
        b = synthetic.biased_trace(100, 0.5, seed=4)
        assert [r.taken for r in a] != [r.taken for r in b]

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            synthetic.biased_trace(10, 1.5)


class TestCorrelatedPair:
    def test_b_repeats_a(self):
        trace = synthetic.correlated_pair_trace(50, seed=1)
        records = list(trace)
        for i in range(0, len(records), 2):
            assert records[i].taken == records[i + 1].taken
            assert records[i].pc != records[i + 1].pc


class TestMarkovTrace:
    def test_sticky_chain_has_long_runs(self):
        trace = synthetic.markov_trace(5000, 0.95, 0.95, seed=2)
        outcomes = [r.taken for r in trace]
        transitions = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a != b)
        assert transitions < 0.15 * len(outcomes)

    def test_anti_sticky_chain_alternates(self):
        trace = synthetic.markov_trace(5000, 0.05, 0.05, seed=2)
        outcomes = [r.taken for r in trace]
        transitions = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a != b)
        assert transitions > 0.85 * (len(outcomes) - 1)


class TestInterleaved:
    def test_sites_and_round_robin(self):
        sources = [synthetic.loop_source(3), synthetic.alternating_source()]
        trace = synthetic.interleaved(sources, length=10, base_pc=0x100, pc_stride=0x10)
        pcs = [r.pc for r in trace]
        assert pcs[:4] == [0x100, 0x110, 0x100, 0x110]

    def test_per_site_sequences_preserved(self):
        sources = [synthetic.pattern_source([True, False]), synthetic.loop_source(2)]
        trace = synthetic.interleaved(sources, length=8)
        site0 = [r.taken for r in trace if r.pc == trace[0].pc]
        assert site0 == [True, False, True, False]

    def test_rejects_no_sources(self):
        with pytest.raises(ValueError):
            synthetic.interleaved([], length=5)


class TestSources:
    def test_loop_source(self):
        source = synthetic.loop_source(3)
        assert [source(i) for i in range(6)] == [True, True, False, True, True, False]

    def test_pattern_source(self):
        source = synthetic.pattern_source([True, False, False])
        assert [source(i) for i in range(4)] == [True, False, False, True]

    def test_source_validation(self):
        with pytest.raises(ValueError):
            synthetic.loop_source(0)
        with pytest.raises(ValueError):
            synthetic.pattern_source([])


class TestConcat:
    def test_concatenation_preserves_records_and_traps(self):
        a = synthetic.loop_trace(iterations=2, trip_count=2)
        b = synthetic.periodic_trace([False], repeats=3)
        combined = synthetic.concat([a, b])
        assert len(combined) == len(a) + len(b)
        assert [r.taken for r in combined] == [r.taken for r in a] + [r.taken for r in b]

    def test_instret_monotonic(self):
        a = synthetic.loop_trace(iterations=3, trip_count=3)
        b = synthetic.loop_trace(iterations=3, trip_count=3)
        combined = synthetic.concat([a, b])
        instrets = [r.instret for r in combined]
        assert instrets == sorted(instrets)
        assert instrets[-1] > instrets[len(a) - 1]
