"""Tests for trace transformations."""

import pytest

from repro.trace import synthetic
from repro.trace.events import BranchClass, TraceBuilder
from repro.trace.transforms import (
    filter_sites,
    merge,
    skip_warmup,
    split_phases,
    subsample_sites,
    window,
)


def _mixed():
    builder = TraceBuilder(name="m")
    for i in range(10):
        builder.conditional(0xA, i % 2 == 0, work=3)
        builder.call(0xC)
        builder.conditional(0xB, True, work=3)
    return builder.build()


class TestWindow:
    def test_slice(self):
        trace = _mixed()
        piece = window(trace, 5, 10)
        assert len(piece) == 10
        assert piece[0] == trace[5]

    def test_clamps(self):
        trace = _mixed()
        assert len(window(trace, 25, 100)) == 5
        assert len(window(trace, 100, 10)) == 0

    def test_instret_preserved(self):
        trace = _mixed()
        piece = window(trace, 3, 4)
        assert piece[0].instret == trace[3].instret

    def test_validation(self):
        with pytest.raises(ValueError):
            window(_mixed(), -1, 5)


class TestSkipWarmup:
    def test_drops_first_n_conditionals(self):
        trace = _mixed()
        warm = skip_warmup(trace, 6)
        assert warm.num_conditional() == trace.num_conditional() - 6

    def test_zero_is_identity_length(self):
        trace = _mixed()
        assert len(skip_warmup(trace, 0)) == len(trace)

    def test_more_than_available(self):
        trace = _mixed()
        assert len(skip_warmup(trace, 10_000)) == 0


class TestFilterSites:
    def test_keep(self):
        trace = _mixed()
        only_a = filter_sites(trace, {0xA})
        conditional_pcs = {r.pc for r in only_a if r.is_conditional}
        assert conditional_pcs == {0xA}

    def test_drop(self):
        trace = _mixed()
        without_a = filter_sites(trace, {0xA}, keep=False)
        conditional_pcs = {r.pc for r in without_a if r.is_conditional}
        assert conditional_pcs == {0xB}

    def test_non_conditionals_survive(self):
        trace = _mixed()
        filtered = filter_sites(trace, {0xA})
        calls = sum(1 for r in filtered if r.branch_class is BranchClass.CALL)
        assert calls == 10

    def test_subsample_predicate(self):
        trace = _mixed()
        even = subsample_sites(trace, lambda pc: pc % 2 == 0)
        conditional_pcs = {r.pc for r in even if r.is_conditional}
        assert conditional_pcs == {0xA}


class TestSplitPhases:
    def test_pieces_cover_everything(self):
        trace = synthetic.loop_trace(iterations=30, trip_count=5)
        pieces = split_phases(trace, 4)
        assert len(pieces) == 4
        assert sum(len(p) for p in pieces) == len(trace)

    def test_single_phase(self):
        trace = _mixed()
        pieces = split_phases(trace, 1)
        assert len(pieces) == 1
        assert len(pieces[0]) == len(trace)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_phases(_mixed(), 0)


class TestMerge:
    def test_lengths_add(self):
        a = synthetic.loop_trace(iterations=5, trip_count=3)
        b = synthetic.loop_trace(iterations=7, trip_count=2, pc=0x99)
        merged = merge([a, b])
        assert len(merged) == len(a) + len(b)

    def test_instret_monotone_and_rebased(self):
        a = synthetic.loop_trace(iterations=5, trip_count=3)
        b = synthetic.loop_trace(iterations=5, trip_count=3)
        merged = merge([a, b])
        instrets = [r.instret for r in merged]
        assert instrets == sorted(instrets)
        assert instrets[-1] > a[len(a) - 1].instret

    def test_traps_preserved(self):
        builder = TraceBuilder()
        builder.trap()
        builder.conditional(1, True)
        merged = merge([builder.build(), _mixed()])
        assert merged[0].trap
