"""Unit and behavioural tests for GAg / PAg / PAp (and extensions)."""

import pytest

from repro.core.automata import A2, LAST_TIME
from repro.core.twolevel import (
    GAgPredictor,
    GApPredictor,
    GsharePredictor,
    PAgPredictor,
    PApPredictor,
    TwoLevelConfig,
    make_gag,
    make_pag,
    make_pap,
)
from repro.sim.engine import simulate
from repro.trace import synthetic


def drive(predictor, outcomes, pc=0x100):
    """Feed a single branch's outcome sequence; return accuracy."""
    correct = 0
    for outcome in outcomes:
        if predictor.predict(pc) == outcome:
            correct += 1
        predictor.update(pc, outcome)
    return correct / len(outcomes)


class TestTwoLevelConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TwoLevelConfig(history_bits=0)
        with pytest.raises(ValueError):
            TwoLevelConfig(history_bits=4, bht_entries=0)

    def test_ideal_bht_allowed(self):
        config = TwoLevelConfig(history_bits=4, bht_entries=None)
        assert config.bht_entries is None


class TestGAg:
    def test_initial_history_is_all_ones(self):
        gag = GAgPredictor(6)
        assert gag.ghr == 0b111111

    def test_learns_periodic_pattern_perfectly(self):
        # Period-4 pattern fits easily in an 8-bit history register.
        pattern = [True, True, False, True]
        gag = GAgPredictor(8)
        accuracy = drive(gag, pattern * 100)
        assert accuracy > 0.95

    def test_history_shifts_on_update(self):
        gag = GAgPredictor(4)
        gag.update(0, False)
        assert gag.ghr == 0b1110
        gag.update(0, True)
        assert gag.ghr == 0b1101

    def test_pht_indexed_by_pre_update_history(self):
        gag = GAgPredictor(2)
        before = gag.ghr
        state_before = gag.pht.state(before)
        gag.update(0, False)
        assert gag.pht.state(before) == A2.next_state(state_before, False)

    def test_context_switch_reinitialises_history_not_pht(self):
        gag = GAgPredictor(4)
        for outcome in (False, False, False, True):
            gag.update(0, outcome)
        snapshot = gag.pht.states_snapshot()
        gag.on_context_switch()
        assert gag.ghr == 0b1111
        assert gag.pht.states_snapshot() == snapshot

    def test_reset_clears_pht_too(self):
        gag = GAgPredictor(4)
        gag.update(0, False)
        gag.reset()
        assert gag.pht.states_snapshot() == [A2.initial_state] * 16

    def test_shared_history_across_branches(self):
        # GAg's defining property: branch B's outcome is visible in the
        # history used to predict branch C.
        gag = GAgPredictor(4)
        gag.update(0xA, False)
        gag.update(0xB, True)
        assert gag.ghr == 0b1101

    def test_name_follows_convention(self):
        assert GAgPredictor(18).name == "GAg(HR(1,,18-sr),1xPHT(2^18,A2))"


class TestPAg:
    def test_separate_histories_per_branch(self):
        pag = make_pag(4)
        pag.predict(0xA)
        pag.update(0xA, False)
        pag.predict(0xB)
        pag.update(0xB, True)
        entry_a = pag.bht.peek(0xA)
        entry_b = pag.bht.peek(0xB)
        # First update after a miss extends the outcome (paper §4.2).
        assert entry_a.value == 0b0000
        assert entry_b.value == 0b1111

    def test_outcome_extension_then_shift(self):
        pag = make_pag(4)
        pag.predict(0xA)
        pag.update(0xA, False)  # extension: 0000
        pag.update(0xA, True)  # shift: 0001
        assert pag.bht.peek(0xA).value == 0b0001

    def test_shared_global_pht(self):
        # Two branches with identical per-address history share the
        # same pattern entry — PAg's remaining interference.
        pag = make_pag(2)
        for _ in range(3):
            pag.predict(0xA)
            pag.update(0xA, False)
        # Branch B, fresh, also reaches pattern 00 after two NTs.
        pag.predict(0xB)
        pag.update(0xB, False)
        # B's first prediction for pattern 00 inherits A's training.
        assert pag.bht.peek(0xB).value == 0b00
        assert pag.predict(0xB) is False

    def test_learns_loop_exactly(self):
        trace = synthetic.loop_trace(iterations=300, trip_count=5)
        result = simulate(make_pag(8), trace)
        assert result.accuracy > 0.98

    def test_context_switch_flushes_bht(self):
        pag = make_pag(4)
        pag.predict(0xA)
        pag.update(0xA, True)
        pag.on_context_switch()
        assert pag.bht.peek(0xA) is None

    def test_ideal_bht(self):
        pag = make_pag(4, bht_entries=None)
        for pc in range(2000):
            pag.predict(pc)
            pag.update(pc, True)
        assert pag.bht.num_entries == 2000

    def test_update_without_predict_allocates(self):
        pag = make_pag(4)
        pag.update(0xA, True)  # engine discipline violation tolerated
        assert pag.bht.peek(0xA) is not None

    def test_name_mentions_bht_geometry(self):
        assert make_pag(12, bht_entries=256, bht_associativity=1).name == (
            "PAg(BHT(256,1,12-sr),1xPHT(2^12,A2))"
        )
        assert make_pag(10, bht_entries=None).name == (
            "PAg(IBHT(inf,,10-sr),1xPHT(2^10,A2))"
        )


class TestPAp:
    def test_per_slot_pattern_tables(self):
        pap = make_pap(2)
        # Train branch A's table for pattern 00 toward not-taken.
        for _ in range(4):
            pap.predict(0xA)
            pap.update(0xA, False)
        # Branch B reaches the same pattern but has its own table, so
        # it still predicts the initial taken.
        pap.predict(0xB)
        pap.update(0xB, False)
        pap.update(0xB, False)
        entry_b = pap.bht.peek(0xB)
        assert entry_b.value == 0b00
        # A's trained table says NT for 00; B's table was only updated
        # twice from state 3 -> state 1, so it predicts NT too only
        # after its own training. Check independence via bank tables.
        entry_a = pap.bht.peek(0xA)
        assert pap.bank.table_for(entry_a.slot) is not pap.bank.table_for(entry_b.slot)

    def test_removes_pattern_interference(self):
        # Branch A is always taken (history stays at pattern 1); branch
        # B alternates, so B maps pattern 1 -> not taken. In PAg the two
        # fight over the shared pattern-1 entry; PAp separates them.
        def run(predictor):
            correct = 0
            total = 1200
            b_outcome = True
            for i in range(total):
                if i % 2 == 0:
                    pc, outcome = 0xA, True
                else:
                    pc, outcome = 0xB, b_outcome
                    b_outcome = not b_outcome
                if predictor.predict(pc) == outcome:
                    correct += 1
                predictor.update(pc, outcome)
            return correct / total

        pap_accuracy = run(make_pap(1))
        pag_accuracy = run(make_pag(1))
        assert pap_accuracy > pag_accuracy

    def test_slot_reallocation_resets_pattern_table(self):
        config = TwoLevelConfig(history_bits=2, bht_entries=1, bht_associativity=1)
        pap = PApPredictor(config)
        for _ in range(4):
            pap.predict(0xA)
            pap.update(0xA, False)
        # predict() is a pure read: probing 0xB allocates nothing.
        pap.predict(0xB)
        assert pap.bht.peek(0xB) is None
        # update() evicts 0xA from the single slot; the slot's table
        # resets before absorbing 0xB's first (taken) outcome, which
        # leaves every entry in the initial state.
        pap.update(0xB, True)
        entry = pap.bht.peek(0xB)
        table = pap.bank.table_for(entry.slot)
        assert all(state == A2.initial_state for state in table.states_snapshot())

    def test_keep_policy_preserves_table(self):
        config = TwoLevelConfig(
            history_bits=2, bht_entries=1, bht_associativity=1, reset_pht_on_evict=False
        )
        pap = PApPredictor(config)
        for _ in range(4):
            pap.predict(0xA)
            pap.update(0xA, False)
        pap.predict(0xB)
        pap.update(0xB, True)
        entry = pap.bht.peek(0xB)
        table = pap.bank.table_for(entry.slot)
        assert table.state(0b00) != A2.initial_state

    def test_name(self):
        assert make_pap(6).name == "PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))"


class TestGApAndGshare:
    def test_gap_separates_pattern_tables_by_pc(self):
        gap = GApPredictor(2)
        gap.update(0xA, False)
        gap.update(0xA, False)
        # Global history moved, but 0xB's own table is untouched.
        assert len(gap.bank) == 1

    def test_gap_context_switch(self):
        gap = GApPredictor(4)
        gap.update(0xA, False)
        gap.on_context_switch()
        assert gap.ghr == 0b1111

    def test_gshare_xor_indexing(self):
        gshare = GsharePredictor(4)
        gshare.ghr = 0b1010
        assert gshare._index(0b0110) == 0b1100

    def test_gshare_learns_correlation(self):
        trace = synthetic.correlated_pair_trace(4000, seed=3)
        result = simulate(GsharePredictor(10), trace)
        # B is perfectly predictable from A's outcome; A is a coin flip.
        assert result.accuracy > 0.70


class TestVariationOrdering:
    """The paper's Figure 6 property on a controlled synthetic mix."""

    def _mixed_trace(self):
        sources = [synthetic.loop_source(t) for t in (3, 4, 5, 7)] + [
            synthetic.pattern_source([True, False]),
            synthetic.pattern_source([True, True, False]),
        ]
        return synthetic.interleaved(sources, length=30_000)

    def test_pap_beats_pag_beats_gag_at_equal_history(self):
        trace = self._mixed_trace()
        gag = simulate(make_gag(4), trace).accuracy
        pag = simulate(make_pag(4), trace).accuracy
        pap = simulate(make_pap(4), trace).accuracy
        assert pap >= pag >= gag

    def test_gag_recovers_with_long_history(self):
        trace = self._mixed_trace()
        short = simulate(make_gag(4), trace).accuracy
        long = simulate(make_gag(14), trace).accuracy
        assert long > short
