"""Tests for the workload instrumentation layer."""

import random

import pytest

from repro.trace.events import BranchClass, TraceBuilder
from repro.workloads.base import BranchProbe, DatasetSpec, Workload, stable_site_id


def _probe(name="test"):
    builder = TraceBuilder(name=name)
    return BranchProbe(name, builder), builder


class TestSiteIds:
    def test_stable_across_calls(self):
        assert stable_site_id("w", "lbl") == stable_site_id("w", "lbl")

    def test_namespace_separates(self):
        assert stable_site_id("w1", "lbl") != stable_site_id("w2", "lbl")

    def test_word_aligned_and_nonzero(self):
        for label in ("a", "b", "c"):
            pc = stable_site_id("w", label)
            assert pc % 4 == 0
            assert pc > 0

    def test_probe_site_is_stable_regardless_of_order(self):
        probe_a, _ = _probe()
        probe_b, _ = _probe()
        probe_a.site("first")
        probe_a.site("second")
        probe_b.site("second")
        probe_b.site("first")
        assert probe_a.site("first") == probe_b.site("first")
        assert probe_a.site("second") == probe_b.site("second")

    def test_num_sites(self):
        probe, _ = _probe()
        probe.cond("x", True)
        probe.cond("x", False)
        probe.cond("y", True)
        assert probe.num_sites == 2


class TestProbeEvents:
    def test_cond_returns_outcome(self):
        probe, _ = _probe()
        assert probe.cond("c", True) is True
        assert probe.cond("c", False) is False

    def test_backward_branches_have_backward_targets(self):
        probe, builder = _probe()
        probe.cond("loop", True, backward=True)
        probe.cond("guard", True)
        trace = builder.build()
        loop, guard = trace[0], trace[1]
        assert loop.target < loop.pc
        assert guard.target > guard.pc

    def test_backward_is_sticky_per_label(self):
        probe, builder = _probe()
        probe.while_("w", True)  # declares backward
        probe.cond("w", False)  # same label, no explicit flag
        trace = builder.build()
        assert trace[1].target < trace[1].pc

    def test_loop_emits_trip_minus_one_takens_and_one_exit(self):
        probe, builder = _probe()
        assert list(probe.loop("l", 3)) == [0, 1, 2]
        outcomes = [r.taken for r in builder.build()]
        assert outcomes == [True, True, True, False]

    def test_zero_trip_loop_single_not_taken(self):
        probe, builder = _probe()
        assert list(probe.loop("l", 0)) == []
        trace = builder.build()
        assert len(trace) == 1
        assert trace[0].taken is False

    def test_call_ret_jump_classes(self):
        probe, builder = _probe()
        probe.call("c")
        probe.ret("r")
        probe.jump("j")
        classes = [r.branch_class for r in builder.build()]
        assert classes == [BranchClass.CALL, BranchClass.RETURN, BranchClass.UNCONDITIONAL]

    def test_trap_and_work(self):
        probe, builder = _probe()
        probe.work(50)
        probe.trap()
        probe.cond("c", True)
        trace = builder.build()
        assert trace[0].trap


class _ToyWorkload(Workload):
    name = "toy"
    category = "int"
    training_dataset = DatasetSpec("train-set", seed=1, size=5)
    testing_dataset = DatasetSpec("test-set", seed=2, size=10)

    def run(self, probe, rng, dataset, scale):
        for _ in probe.loop("main", dataset.size * scale):
            probe.cond("coin", rng.random() < 0.5)


class TestWorkloadBase:
    def test_generate_testing_default(self):
        trace = _ToyWorkload().generate()
        assert trace.meta.dataset == "test-set"
        assert trace.num_conditional() == 21  # 10 loop takens + exit + 10 coins

    def test_dataset_by_role_and_name(self):
        workload = _ToyWorkload()
        assert workload.generate("training").meta.dataset == "train-set"
        assert workload.generate("train-set").meta.dataset == "train-set"
        assert workload.generate("testing").meta.dataset == "test-set"

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            _ToyWorkload().generate("nope")

    def test_scale_multiplies_work(self):
        small = _ToyWorkload().generate(scale=1)
        large = _ToyWorkload().generate(scale=3)
        assert len(large) > 2 * len(small)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            _ToyWorkload().generate(scale=0)

    def test_deterministic_per_seed(self):
        a = _ToyWorkload().generate()
        b = _ToyWorkload().generate()
        assert [r.taken for r in a] == [r.taken for r in b]

    def test_seed_offset_changes_stream(self):
        a = _ToyWorkload().generate()
        b = _ToyWorkload().generate(seed_offset=1)
        assert [r.taken for r in a] != [r.taken for r in b]

    def test_missing_training_dataset(self):
        class NoTraining(_ToyWorkload):
            training_dataset = None

        with pytest.raises(ValueError):
            NoTraining().generate("training")
        assert not NoTraining().has_training


class TestAlternateDatasets:
    def test_suite_workloads_expose_alternates(self):
        from repro.workloads import get_workload

        eqntott = get_workload("eqntott")
        names = [spec.name for spec in eqntott.datasets()]
        assert "int_pri_1.eqn" in names
        trace = eqntott.generate("int_pri_1.eqn")
        assert trace.meta.dataset == "int_pri_1.eqn"
        assert len(trace) > 1000

    def test_alternate_differs_from_testing(self):
        from repro.workloads import get_workload

        li = get_workload("li")
        small = li.generate("four queens")
        big = li.generate("testing")
        assert len(small) < len(big)

    def test_unknown_dataset_lists_known(self):
        from repro.workloads import get_workload

        with pytest.raises(ValueError, match="known"):
            get_workload("gcc").generate("not-a-file.i")
