"""Per-workload behavioural tests.

Each workload is generated once (module-scope cache) at reduced
implicit size — these tests assert the *character* the paper ascribes
to each benchmark, which is what the reproduction depends on.
"""

import pytest

from repro.core.twolevel import make_pag
from repro.predictors.btb import btb_a2
from repro.sim.engine import simulate
from repro.trace.stats import compute_stats, per_site_bias
from repro.workloads.eqntott import EqntottWorkload
from repro.workloads.espresso import EspressoWorkload
from repro.workloads.fpppp import FppppWorkload
from repro.workloads.gcc_like import GccWorkload, generate_source, lex, Parser
from repro.workloads.li import (
    HANOI_PROGRAM,
    Interpreter,
    LiWorkload,
    LispError,
    parse_all,
)
from repro.workloads.matrix300 import Matrix300Workload
from repro.workloads.base import BranchProbe
from repro.trace.events import TraceBuilder

_TRACES = {}


def _trace(cls, dataset="testing"):
    key = (cls.__name__, dataset)
    if key not in _TRACES:
        _TRACES[key] = cls().generate(dataset)
    return _TRACES[key]


class TestEqntott:
    def test_two_level_crushes_counters(self):
        # The famous eqntott result: pattern-history buys a lot.
        trace = _trace(EqntottWorkload)
        pag = simulate(make_pag(12), trace).accuracy
        btb = simulate(btb_a2(), trace).accuracy
        assert pag - btb > 0.10

    def test_cmppt_site_dominates(self):
        trace = _trace(EqntottWorkload)
        stats = compute_stats(trace)
        assert stats.dynamic_conditional > 50_000


class TestEspresso:
    def test_deterministic(self):
        a = EspressoWorkload().generate("testing")
        b = EspressoWorkload().generate("testing")
        assert len(a) == len(b)
        assert [r.taken for r in a.head(500)] == [r.taken for r in b.head(500)]

    def test_train_and_test_differ(self):
        train = _trace(EspressoWorkload, "training")
        test = _trace(EspressoWorkload, "testing")
        assert train.meta.dataset == "cps"
        assert test.meta.dataset == "bca"
        assert [r.taken for r in train.head(200)] != [r.taken for r in test.head(200)]


class TestGcc:
    def test_largest_static_population(self):
        trace = _trace(GccWorkload)
        assert compute_stats(trace).static_conditional_sites > 512

    def test_many_traps(self):
        trace = _trace(GccWorkload)
        assert compute_stats(trace).trap_count >= 2 * 32  # >= 2 per unit

    def test_generated_source_parses(self):
        import random

        source = generate_source(random.Random(7), functions=3, statements=5)
        builder = TraceBuilder()
        probe = BranchProbe("t", builder)
        tokens = lex(probe, source)
        functions = Parser(probe, tokens).parse_unit()
        assert len(functions) == 3
        assert all(f.kind == "function" for f in functions)

    def test_lexer_tokenises_known_snippet(self):
        builder = TraceBuilder()
        probe = BranchProbe("t", builder)
        tokens = lex(probe, "int f() { return 42; }")
        kinds = [t.kind for t in tokens]
        assert kinds == ["int", "ident", "(", ")", "{", "return", "num", ";", "}"]


class TestLi:
    def test_interpreter_arithmetic(self):
        builder = TraceBuilder()
        interp = Interpreter(BranchProbe("li", builder))
        assert interp.run_program("(+ 1 2 3)") == 6
        assert interp.run_program("(* 2 (quotient 9 2))") == 8

    def test_interpreter_recursion(self):
        builder = TraceBuilder()
        interp = Interpreter(BranchProbe("li", builder))
        program = """
        (define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))
        (fact 10)
        """
        assert interp.run_program(program) == 3628800

    def test_hanoi_move_count(self):
        builder = TraceBuilder()
        interp = Interpreter(BranchProbe("li", builder))
        result = interp.run_program(HANOI_PROGRAM.replace("DISKS", "5"))
        assert result == 31  # 2^5 - 1 moves

    def test_queens_solution_count(self):
        builder = TraceBuilder()
        interp = Interpreter(BranchProbe("li", builder))
        from repro.workloads.li import QUEENS_PROGRAM

        program = QUEENS_PROGRAM.replace("BOARD", "6").replace("(display (queens 6))", "(queens 6)")
        assert interp.run_program(program) == 4  # 6-queens has 4 solutions

    def test_closures_and_let(self):
        builder = TraceBuilder()
        interp = Interpreter(BranchProbe("li", builder))
        program = """
        (define (adder n) (lambda (x) (+ x n)))
        (let ((add5 (adder 5))) (add5 37))
        """
        assert interp.run_program(program) == 42

    def test_set_and_begin(self):
        builder = TraceBuilder()
        interp = Interpreter(BranchProbe("li", builder))
        assert interp.run_program("(define x 1) (begin (set! x 10) (+ x 1))") == 11

    def test_errors(self):
        builder = TraceBuilder()
        interp = Interpreter(BranchProbe("li", builder))
        with pytest.raises(LispError):
            interp.run_program("(car 5)")
        with pytest.raises(LispError):
            interp.run_program("(undefined-symbol)")
        with pytest.raises(LispError):
            parse_all("(unclosed")

    def test_conflict_chain_is_data_dependent(self):
        trace = _trace(LiWorkload)
        bias = per_site_bias(trace)
        # At least some sites are genuinely mixed (0.2..0.8 bias).
        mixed = [b for b in bias.values() if 0.2 < b < 0.8]
        assert mixed


class TestFppppAndMatrix:
    def test_fpppp_easy_for_everyone(self):
        trace = _trace(FppppWorkload)
        assert simulate(btb_a2(), trace).accuracy > 0.90
        assert simulate(make_pag(12), trace).accuracy > 0.95

    def test_fpppp_low_branch_fraction(self):
        stats = compute_stats(_trace(FppppWorkload))
        assert stats.branch_fraction < 0.05

    def test_matrix300_highly_predictable(self):
        trace = _trace(Matrix300Workload)
        assert simulate(make_pag(12), trace).accuracy > 0.95

    def test_matrix300_heavily_taken(self):
        stats = compute_stats(_trace(Matrix300Workload))
        assert stats.taken_rate > 0.85
