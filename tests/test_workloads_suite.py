"""Tests for the nine-benchmark suite (Tables 1 and 2 analogs).

Trace generation is memoized in a module-level cache so the whole file
costs one suite generation.
"""

import pytest

from repro.trace.cache import TraceCache
from repro.trace.stats import compute_stats
from repro.workloads.suite import (
    BENCHMARK_ORDER,
    PAPER_TABLE1,
    PAPER_TABLE2,
    SuiteConfig,
    all_workloads,
    build_cases,
    get_workload,
    table1_static_branch_counts,
    table2_datasets,
)

_CACHE = TraceCache()


@pytest.fixture(scope="module")
def cases():
    return build_cases(SuiteConfig(), cache=_CACHE)


class TestSuiteRegistry:
    def test_nine_benchmarks_in_paper_order(self):
        assert BENCHMARK_ORDER == (
            "eqntott",
            "espresso",
            "gcc",
            "li",
            "doduc",
            "fpppp",
            "matrix300",
            "spice2g6",
            "tomcatv",
        )
        assert list(all_workloads()) == list(BENCHMARK_ORDER)

    def test_category_split_matches_paper(self):
        workloads = all_workloads()
        integers = {name for name, w in workloads.items() if w.category == "int"}
        assert integers == {"eqntott", "espresso", "gcc", "li"}
        assert len(workloads) - len(integers) == 5

    def test_get_workload(self):
        assert get_workload("gcc").name == "gcc"
        with pytest.raises(KeyError):
            get_workload("nasa7")  # excluded by the paper too

    def test_table2_matches_paper_names(self):
        ours = table2_datasets()
        for name, paper_row in PAPER_TABLE2.items():
            assert ours[name]["training"].lower() == paper_row["training"].lower()
            assert ours[name]["testing"].lower() == paper_row["testing"].lower()

    def test_training_availability_matches_table2(self):
        for name, workload in all_workloads().items():
            expected = PAPER_TABLE2[name]["training"] != "NA"
            assert workload.has_training == expected


class TestSuiteConfig:
    def test_selected_defaults_to_all(self):
        assert SuiteConfig().selected() == list(BENCHMARK_ORDER)

    def test_subset_preserves_paper_order(self):
        config = SuiteConfig(benchmarks=["tomcatv", "gcc"])
        assert config.selected() == ["gcc", "tomcatv"]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            SuiteConfig(benchmarks=["gcc", "nope"]).selected()


class TestBuiltCases(object):
    def test_all_nine_cases(self, cases):
        assert [c.name for c in cases] == list(BENCHMARK_ORDER)

    def test_training_traces_present_iff_table2(self, cases):
        for case in cases:
            if PAPER_TABLE2[case.name]["training"] == "NA":
                assert case.training_trace is None
            else:
                assert case.training_trace is not None
                assert case.training_trace.meta.dataset != case.test_trace.meta.dataset

    def test_traces_are_nontrivial(self, cases):
        for case in cases:
            assert case.test_trace.num_conditional() > 10_000, case.name

    def test_gcc_has_largest_static_population(self, cases):
        counts = {
            case.name: compute_stats(case.test_trace).static_conditional_sites
            for case in cases
        }
        assert max(counts, key=counts.get) == "gcc"
        assert counts["gcc"] > 512  # must pressure a 512-entry BHT

    def test_conditional_branches_dominate(self, cases):
        # The paper's Figure 4: ~80 % of branches are conditional.
        for case in cases:
            stats = compute_stats(case.test_trace)
            assert stats.conditional_fraction > 0.6, case.name

    def test_fp_benchmarks_have_lower_branch_fraction(self, cases):
        stats = {case.name: compute_stats(case.test_trace) for case in cases}
        fp_fraction = sum(
            stats[c.name].branch_fraction for c in cases if c.category == "fp"
        ) / 5
        int_fraction = sum(
            stats[c.name].branch_fraction for c in cases if c.category == "int"
        ) / 4
        assert fp_fraction < int_fraction

    def test_taken_bias_overall(self, cases):
        # Branches are taken-biased overall (paper §4.2 initialisation
        # rationale); AlwaysTaken lands near the paper's ~62 %.
        total_taken = 0
        total = 0
        for case in cases:
            stats = compute_stats(case.test_trace)
            total_taken += stats.taken_conditional
            total += stats.dynamic_conditional
        assert 0.5 < total_taken / total < 0.75

    def test_gcc_carries_traps(self, cases):
        gcc = next(c for c in cases if c.name == "gcc")
        assert compute_stats(gcc.test_trace).trap_count > 10

    def test_caching_returns_same_traces(self, cases):
        again = build_cases(SuiteConfig(), cache=_CACHE)
        for first, second in zip(cases, again):
            assert first.test_trace is second.test_trace


class TestTable1:
    def test_counts_positive_and_gcc_largest(self, cases):
        counts = table1_static_branch_counts(SuiteConfig(), cache=_CACHE)
        assert set(counts) == set(BENCHMARK_ORDER)
        assert all(count > 0 for count in counts.values())
        assert max(counts, key=counts.get) == "gcc"

    def test_paper_reference_numbers(self):
        assert PAPER_TABLE1["gcc"] == 6922
        assert PAPER_TABLE1["matrix300"] == 213
